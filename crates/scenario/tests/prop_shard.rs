//! Randomized differential properties for the sharded engine.
//!
//! Complements `tests/integration_shard.rs` (which pins specific
//! corridor shapes) with randomized fleet configurations: for every
//! generated `(config, seed)` the sequential monolithic [`World`] is
//! the oracle and `shard::run_sharded` must reproduce its
//! [`FleetReport`] bit for bit, under randomized worker counts and
//! synchronization windows.
//!
//! Each case runs full discrete-event simulations, so the case count is
//! capped at a handful (still honouring a *smaller* `PROPTEST_CASES`,
//! e.g. CI's pinned-seed smoke value) — the cheap per-case work lives
//! in the RNG-only suites, not here.

use wgtt::WgttConfig;
use wgtt_scenario::fleet::FleetConfig;
use wgtt_scenario::shard::run_sharded;
use wgtt_scenario::world::SystemKind;
use wgtt_sim::time::SimDuration;

const MAX_CASES: u32 = 8;

fn wgtt() -> SystemKind {
    SystemKind::Wgtt(WgttConfig::default())
}

#[test]
fn random_corridors_are_shard_invariant() {
    let mut rng = proptest::rng_for("random_corridors_are_shard_invariant");
    let cases = proptest::cases().min(MAX_CASES);
    for case in 0..cases {
        let districts = 1 + rng.below(2) as usize; // 1..=2
        let n_vehicles = districts.max(2) + rng.below(2) as usize;
        let n_aps = (2 * districts).max(4) + rng.below(3) as usize;
        let seed = rng.next_u64();
        let mut cfg = FleetConfig::corridor(n_vehicles, n_aps);
        cfg.duration = SimDuration::from_millis(200 + rng.below(200));
        cfg.districts = districts;

        let oracle = cfg.run(wgtt(), seed);
        let workers = 1 + rng.below(3) as usize;
        let window = match rng.below(3) {
            0 => None,
            1 => Some(SimDuration::from_micros(150 + rng.below(500))),
            _ => Some(SimDuration::from_millis(1 + rng.below(10))),
        };
        let sharded = run_sharded(&cfg, wgtt(), seed, workers, window);
        assert_eq!(
            oracle.equivalence_digest(),
            sharded.equivalence_digest(),
            "case {case}: {districts} districts, {n_vehicles} vehicles, \
             {n_aps} APs, {workers} workers, window {window:?}, seed {seed}"
        );
    }
}

#[test]
fn random_worker_schedules_are_byte_identical() {
    // Thread-interleaving stress: the same districted run under two
    // different worker counts (fresh pools, fresh interleavings) must
    // match on the *full* report, raw event count included.
    let mut rng = proptest::rng_for("random_worker_schedules_are_byte_identical");
    let cases = proptest::cases().min(MAX_CASES);
    for case in 0..cases {
        let districts = 2 + rng.below(2) as usize; // 2..=3
        let n_vehicles = districts + rng.below(2) as usize;
        let n_aps = 2 * districts + rng.below(2) as usize;
        let seed = rng.next_u64();
        let mut cfg = FleetConfig::corridor(n_vehicles, n_aps);
        cfg.duration = SimDuration::from_millis(200 + rng.below(150));
        cfg.districts = districts;

        let wa = 1 + rng.below(districts as u64) as usize;
        let wb = 1 + rng.below(8) as usize;
        let a = run_sharded(&cfg, wgtt(), seed, wa, None);
        let b = run_sharded(&cfg, wgtt(), seed, wb, None);
        assert_eq!(a.events_handled, b.events_handled, "case {case}");
        assert_eq!(
            a.equivalence_digest(),
            b.equivalence_digest(),
            "case {case}: workers {wa} vs {wb}, seed {seed}"
        );
    }
}

#[test]
fn district_plan_concatenation_is_the_monolithic_scenario() {
    // Structural half of the invariance: the monolithic generate() and
    // the district plans must describe the same fleet (pure generation,
    // so this one can afford more cases).
    let mut rng = proptest::rng_for("district_plan_concatenation_is_the_monolithic_scenario");
    let cases = proptest::cases().min(64);
    for _ in 0..cases {
        let districts = 1 + rng.below(4) as usize; // 1..=4
        let n_vehicles = districts + rng.below(20) as usize;
        let n_aps = 2 * districts + rng.below(20) as usize;
        let seed = rng.next_u64();
        let cfg = FleetConfig::corridor(n_vehicles, n_aps);
        let mut cfg = cfg;
        cfg.districts = districts;

        let (mono, kinds, flows) = cfg.generate(seed);
        let plans = cfg.district_plan(seed);
        assert_eq!(plans.len(), districts);
        let cat_aps: usize = plans.iter().map(|p| p.cfg.ap_x.len()).sum();
        let cat_veh: usize = plans.iter().map(|p| p.cfg.clients.len()).sum();
        assert_eq!(cat_aps, mono.ap_x.len());
        assert_eq!(cat_veh, mono.clients.len());
        let cat_kinds: Vec<_> = plans.iter().flat_map(|p| p.kinds.clone()).collect();
        assert_eq!(cat_kinds, kinds);
        let cat_flows: usize = plans.iter().map(|p| p.flows.len()).sum();
        assert_eq!(cat_flows, flows.len());
        // Offsets tile the global id space exactly.
        let mut next_ap = 0u32;
        let mut next_veh = 0usize;
        for p in &plans {
            assert_eq!(p.cfg.ap_id_offset, next_ap);
            assert_eq!(p.cfg.client_index_offset, next_veh);
            assert_eq!(
                p.cfg.client_id_first,
                Some(100u32.max(cfg.n_aps as u32) + next_veh as u32)
            );
            next_ap += p.cfg.ap_x.len() as u32;
            next_veh += p.cfg.clients.len();
        }
        assert_eq!(next_ap as usize, cfg.n_aps);
        assert_eq!(next_veh, cfg.n_vehicles);
        // Districts are spatially disjoint by more than the decode
        // horizon: gap between consecutive AP blocks ≥ 150 m even after
        // the 5 m shuttle tails.
        for w in plans.windows(2) {
            let last = *w[0].cfg.ap_x.last().unwrap();
            let first = *w[1].cfg.ap_x.first().unwrap();
            assert!(
                first - last - 10.0 >= 150.0 - 1e-9,
                "districts too close: {last} .. {first}"
            );
        }
    }
}
