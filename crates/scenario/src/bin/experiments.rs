//! `wgtt-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! wgtt-experiments [--seed N] [--quick] [ids...]
//! wgtt-experiments --list
//! ```
//!
//! With no ids, runs every experiment in paper order. Output is one
//! aligned text table per artifact (the data behind the paper's plot or
//! table); EXPERIMENTS.md records paper-vs-measured comparisons.

use wgtt_scenario::experiments;

/// Run `ids` in parallel on up to `jobs` threads, printing outputs in
/// the requested order as they complete (each experiment is internally
/// deterministic, so parallelism never changes results).
fn run_parallel(ids: &[String], seed: u64, quick: bool, csv: bool, jobs: usize) {
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<String>>> =
        ids.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= ids.len() {
                    break;
                }
                let rendered = match experiments::run(&ids[i], seed, quick) {
                    Some(out) => {
                        if csv {
                            out.render_csv()
                        } else {
                            out.render()
                        }
                    }
                    None => format!("unknown experiment id: {} (try --list)\n", ids[i]),
                };
                *results[i].lock().expect("no panics hold this lock") = Some(rendered);
            });
        }
    });
    for r in &results {
        if let Some(s) = r.lock().expect("threads joined").take() {
            println!("{s}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut quick = false;
    let mut csv = false;
    let mut jobs = 1usize;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--quick" => quick = true,
            "--csv" => csv = true,
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs an integer"));
            }
            "--list" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!("usage: wgtt-experiments [--seed N] [--quick] [--csv] [--jobs N] [ids...]");
                eprintln!("ids: {}", experiments::ALL.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    if jobs > 1 {
        run_parallel(&ids, seed, quick, csv, jobs);
        return;
    }
    for id in &ids {
        match experiments::run(id, seed, quick) {
            Some(out) => {
                if csv {
                    println!("{}", out.render_csv());
                } else {
                    println!("{}", out.render());
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
