//! `wgtt-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! wgtt-experiments [--seed N] [--quick] [ids...]
//! wgtt-experiments --list
//! ```
//!
//! With no ids, runs every experiment in paper order. Output is one
//! aligned text table per artifact (the data behind the paper's plot or
//! table); EXPERIMENTS.md records paper-vs-measured comparisons.

use wgtt_scenario::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut quick = false;
    let mut csv = false;
    let mut jobs = 1usize;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--quick" => quick = true,
            "--csv" => csv = true,
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs an integer"));
            }
            "--list" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: wgtt-experiments [--seed N] [--quick] [--csv] [--jobs N] [ids...]"
                );
                eprintln!("ids: {}", experiments::ALL.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    // Reject unknown ids before burning minutes on the known ones —
    // the same validation regardless of `--jobs`.
    for id in &ids {
        if !experiments::ALL.contains(&id.as_str()) {
            eprintln!("unknown experiment id: {id} (try --list)");
            std::process::exit(2);
        }
    }
    // `render_all` is byte-identical for every `jobs` value (each
    // experiment is a pure function of id/seed/quick; threads only race
    // for which id to pull next).
    print!("{}", experiments::render_all(&ids, seed, quick, csv, jobs));
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
