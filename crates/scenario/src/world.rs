//! The discrete-event world: radios, MAC exchanges, backhaul, transports.
//!
//! One [`World`] is one run: a system under test (WGTT or a baseline
//! roaming scheme), the Fig. 9 testbed, a set of client flows, and a
//! deterministic event queue. The MAC pipeline follows real 802.11n
//! timing — DIFS + backoff contention, A-MPDU data PPDUs, SIFS-spaced
//! Block ACK responses (with the small response jitter the paper observed
//! on the TP-Link hardware, §5.3.2), retransmission on Block ACK loss —
//! and the WGTT control plane runs on top exactly as the core crate
//! defines it.
//!
//! The chain for one downlink packet under WGTT:
//! server → controller (`on_downlink`, 12-bit index assignment) →
//! backhaul fan-out → per-AP cyclic queues → serving AP's NIC staging →
//! A-MPDU on the air → client `BaRecipient` → flow sink (and, for TCP,
//! an ACK packet into the client's uplink queue, which every in-range AP
//! may decode, tunnel, and the controller de-duplicates).

use std::collections::HashMap;

use wgtt::ap::ApAgent;
use wgtt::controller::{ActionBuf, Controller, ControllerAction};
use wgtt::messages::{BackhaulDest, BackhaulMsg};
use wgtt::WgttConfig;
use wgtt_apps::conference::{ConferenceSink, ConferenceSource};
use wgtt_baseline::ap::BaselineAp;
use wgtt_baseline::distribution::DistributionSystem;
use wgtt_baseline::roamer::{Roamer, RoamerAction, RoamerMode};
use wgtt_mac::airtime::{frame_airtime, SIFS_US};
use wgtt_mac::blockack::{BaOriginator, BaRecipient};
use wgtt_mac::frame::{Frame, FrameKind, MgmtStep, Mpdu, NodeId, PacketRef};
use wgtt_mac::medium::{Medium, TxId, TxOutcome};
use wgtt_mac::rate::RateController;
use wgtt_mac::seq::seq_next;
use wgtt_mac::Mcs;
use wgtt_net::packet::{FlowId, Packet, PacketFactory, Transport};
use wgtt_net::tcp::{TcpConfig, TcpReceiver, TcpSender};
use wgtt_net::traffic::CbrUdpSource;
use wgtt_net::wire::Ipv4Addr;
use wgtt_radio::fading::FadingProcess;
use wgtt_radio::link::{Link, LinkBudget};
use wgtt_radio::{Modulation, ParabolicAntenna, PathLossModel};
use wgtt_sim::metrics::{Counter, Distribution, ThroughputMeter, TimeSeries};
use wgtt_sim::queue::{EventId, EventQueue};
use wgtt_sim::rng::{RngStream, Xoshiro256};
use wgtt_sim::time::{SimDuration, SimTime};

use crate::testbed::{ClientPlan, TestbedConfig};

/// Which system serves the clients.
#[derive(Debug, Clone, Copy)]
pub enum SystemKind {
    /// Wi-Fi Goes to Town with the given configuration.
    Wgtt(WgttConfig),
    /// The §5.1 Enhanced 802.11r baseline (threshold roam, 1 s
    /// hysteresis).
    Enhanced80211r,
    /// Stock 802.11r as measured in §2 (5 s RSSI history requirement).
    Stock80211r,
}

/// A traffic workload attached to one client.
#[derive(Debug, Clone, Copy)]
pub enum FlowSpec {
    /// Server → client constant-bit-rate UDP.
    DownlinkUdp {
        /// Offered load, Mbit/s.
        rate_mbps: f64,
    },
    /// Client → server constant-bit-rate UDP.
    UplinkUdp {
        /// Offered load, Mbit/s.
        rate_mbps: f64,
    },
    /// Server → client bulk TCP (iperf-style; also progressive video
    /// download).
    DownlinkTcpBulk,
    /// Server → client finite TCP transfer (web objects).
    DownlinkTcpBytes {
        /// Transfer size.
        bytes: u64,
    },
    /// Server → client conferencing video over UDP.
    DownlinkConference {
        /// Adaptive (Hangouts-like) vs fixed (Skype-like) frame sizing.
        adaptive: bool,
    },
    /// Client → server conferencing video over UDP.
    UplinkConference {
        /// Adaptive vs fixed frame sizing.
        adaptive: bool,
    },
}

/// Conference frame reassembly bookkeeping.
#[derive(Debug, Default)]
struct FrameAssembly {
    /// frame id → (chunks needed, chunks received).
    pending: HashMap<u64, (u32, u32)>,
    /// seq → frame id mapping recorded at send time.
    seq_to_frame: HashMap<u32, (u64, u32)>,
    /// Frames fully generated in the current feedback window.
    window_sent: u64,
    /// Frames completed in the current feedback window.
    window_done: u64,
}

enum FlowKind {
    DownUdp {
        src: CbrUdpSource,
        sink: wgtt_net::flow::UdpFlowSink,
    },
    UpUdp {
        src: CbrUdpSource,
        sink: wgtt_net::flow::UdpFlowSink,
    },
    DownTcp {
        snd: TcpSender,
        rcv: TcpReceiver,
        meter: ThroughputMeter,
        delivered_trace: Vec<(SimTime, u64)>,
        /// Total application bytes for finite transfers (`None` = bulk).
        limit: Option<u64>,
    },
    DownConf {
        src: ConferenceSource,
        asm: FrameAssembly,
        sink: ConferenceSink,
        next_seq: u32,
    },
    UpConf {
        src: ConferenceSource,
        asm: FrameAssembly,
        sink: ConferenceSink,
        next_seq: u32,
    },
}

struct Flow {
    id: FlowId,
    client: NodeId,
    kind: FlowKind,
}

/// Client-side MAC and transport state.
struct ClientNode {
    id: NodeId,
    plan: ClientPlan,
    ip: Ipv4Addr,
    /// Downlink data receive windows, keyed by transmitter identity.
    /// WGTT APs share one BSSID (one window, which survives switches by
    /// design); baseline APs are distinct transmitters with independent
    /// Block ACK sessions.
    ba_rx: HashMap<NodeId, BaRecipient>,
    /// Uplink originator state.
    up_fresh: std::collections::VecDeque<Mpdu>,
    up_retries: Vec<Mpdu>,
    up_ba: BaOriginator,
    up_next_seq: u16,
    up_rate: RateController,
    /// This client's PHY/MAC random stream: backoff slots, per-MPDU
    /// error rolls on frames addressed to or sent by it, CSI noise on
    /// its readings, and control loss/jitter on its switch messages.
    /// Derived from the *global* vehicle index, so a client draws the
    /// same sequence whether it lives in a monolithic world or in a
    /// spatial shard.
    rng: Xoshiro256,
    up_in_flight_meta: Option<(Mcs, usize)>,
    /// Baseline roamer (None under WGTT).
    roamer: Option<Roamer>,
    /// MAC pipeline gates.
    tx_scheduled: bool,
    exchange_pending: bool,
    backoff_stage: u8,
    ba_timeout_ev: Option<EventId>,
    /// Uplink MPDU (re)transmission counters (Table 3).
    up_mpdus_sent: u64,
    up_mpdu_retx: u64,
}

/// Per-run observables the experiments reduce into figures and tables.
#[derive(Default)]
pub struct RunReport {
    /// Per-flow delivered-byte meters (downlink goodput at the client,
    /// uplink goodput at the server).
    pub flow_meters: HashMap<FlowId, ThroughputMeter>,
    /// Per-flow UDP loss (sent, unique received).
    pub udp_counts: HashMap<FlowId, (u64, u64)>,
    /// Serving-AP timeseries per client (AP index as f64).
    pub serving_series: HashMap<NodeId, TimeSeries>,
    /// Instantaneous per-frame PHY bit rate samples (Mbit/s) per client.
    /// One sample per delivered A-MPDU makes this the report's unbounded
    /// recorder on long runs, so it uses the bounded-memory sketch
    /// backend ([`Distribution::sketch`], rank error ≤ the documented
    /// epsilon). `switch_durations` (one sample per completed switch)
    /// moved to the same sketch backend with the controller-dataplane
    /// rewrite; Table 1 reads only its exact count/mean/std-dev.
    pub bitrate_series: HashMap<NodeId, Distribution>,
    /// ESNR traces per (client, AP) — Fig. 2 style.
    pub esnr_traces: HashMap<(NodeId, NodeId), TimeSeries>,
    /// Time spent (s) where the serving AP equalled the oracle-best AP,
    /// and total observed time (Table 2).
    pub accuracy_hits: f64,
    /// Total accuracy observations.
    pub accuracy_total: f64,
    /// Switch protocol execution times (s) — Table 1.
    pub switch_durations: Distribution,
    /// Completed switches.
    pub switches: u64,
    /// High-water mark of concurrent clients served by any single AP
    /// (the load-aware policy's objective; 0 for baseline runs).
    pub max_ap_load: u64,
    /// Block ACK responses that collided on the air (Table 3).
    pub ba_collisions: Counter,
    /// Block ACK responses sent.
    pub ba_responses: Counter,
    /// Uplink MPDUs sent / retransmitted per client.
    pub uplink_mpdus: HashMap<NodeId, (u64, u64)>,
    /// Uplink packets forwarded vs duplicate-dropped at the controller.
    pub uplink_dedup: (u64, u64),
    /// Per-flow conference fps sinks.
    pub conference_sinks: HashMap<FlowId, Vec<f64>>,
    /// Per-flow TCP delivered-byte traces (for offline video replay).
    pub tcp_delivery_traces: HashMap<FlowId, Vec<(SimTime, u64)>>,
    /// TCP sender stats per flow (timeouts etc.).
    pub tcp_timeouts: HashMap<FlowId, u64>,
    /// Time of each completed finite TCP flow.
    pub tcp_completion: HashMap<FlowId, SimTime>,
    /// Baseline: reassociation failures.
    pub failed_handshakes: u64,
    /// Debug: client BA responses scheduled / transmitted / decoded at
    /// their target AP.
    pub dbg_ba: (u64, u64, u64),
    /// Discrete events handled by [`World::run`] — the macro-bench's
    /// events/s numerator.
    pub events_handled: u64,
    /// Frames whose on-air time completed (data, keepalive and control
    /// alike) — the macro-bench's frames/s numerator.
    pub frames_on_air: u64,
    /// Backhaul messages addressed past the AP array, dropped instead
    /// of crashing the run (robustness counter; see `on_backhaul`).
    pub backhaul_misaddressed: u64,
    /// Delivered-frame packet refs that no longer resolved in the
    /// packet store, skipped instead of crashing the run.
    pub missing_packet_refs: u64,
    /// Instant of the most recent decoded downlink A-MPDU per client.
    /// Clients that never decoded a frame have no entry — the fleet
    /// aggregation layer reports them as 100 % outage rather than
    /// dividing by a zero frame count.
    pub last_delivery: HashMap<NodeId, SimTime>,
    /// Downlink outage durations (s) per client: every gap of at least
    /// [`OUTAGE_MIN`] between successive decoded A-MPDUs, measured from
    /// `traffic_start`, with the trailing gap closed at the end of the
    /// run by `finalize`.
    pub outage_durations: HashMap<NodeId, Distribution>,
    /// The run's duration.
    pub duration: SimDuration,
}

/// World events.
enum Ev {
    Backhaul {
        to: BackhaulDest,
        msg: BackhaulMsg,
    },
    CtlPoll,
    ApTxStart {
        ap: NodeId,
    },
    ClientTxStart {
        client: NodeId,
    },
    TxEnd {
        tx: TxId,
        frame: Frame,
    },
    /// A (Block) ACK response due after SIFS + hardware jitter.
    BaResponse {
        from: NodeId,
        to: NodeId,
        client: NodeId,
        start_seq: u16,
        bitmap: u64,
    },
    /// Bare ACK response for management frames.
    MgmtResponse {
        from: NodeId,
        to: NodeId,
        step: MgmtStep,
    },
    /// A contended management transmission attempt (reassociation
    /// request) granted at this instant.
    MgmtTx {
        from: NodeId,
        to: NodeId,
        step: MgmtStep,
        attempt: u8,
    },
    BaTimeout {
        ap: NodeId,
        client: NodeId,
    },
    ClientBaTimeout {
        client: NodeId,
    },
    Traffic {
        flow: FlowId,
    },
    TcpTimer {
        flow: FlowId,
    },
    Beacon {
        ap: NodeId,
        /// True for a deferred retry after finding the medium busy (does
        /// not reschedule the periodic chain).
        retry: bool,
    },
    RoamPoll {
        client: NodeId,
    },
    Mobility,
    ConfFeedback {
        flow: FlowId,
    },
    SampleState,
    /// Small periodic uplink frame every client emits (NULL-data /
    /// control-connection chatter) — the CSI heartbeat that lets the
    /// controller track a client through downlink-only workloads.
    Keepalive {
        client: NodeId,
    },
}

#[allow(clippy::large_enum_variant)] // one per world; boxing buys nothing
enum SystemState {
    Wgtt {
        controller: Controller,
        aps: Vec<ApAgent>,
    },
    Baseline {
        ds: DistributionSystem,
        aps: Vec<BaselineAp>,
    },
}

/// The simulation world.
pub struct World {
    cfg: TestbedConfig,
    system_kind: SystemKind,
    queue: EventQueue<Ev>,
    medium: Medium,
    links: HashMap<(NodeId, NodeId), Link>,
    system: SystemState,
    clients: Vec<ClientNode>,
    /// First client NodeId: 100 for every paper-scale world, pushed up
    /// to the AP count for corridors with ≥ 100 APs so client ids can
    /// never collide with AP ids (`is_ap` is an id-range test).
    client_base: u32,
    flows: Vec<Flow>,
    factory: PacketFactory,
    packets: HashMap<u64, Packet>,
    /// Per-AP PHY/MAC random streams (indexed like the other per-AP
    /// vectors): contention backoff, Block-ACK response jitter, beacon
    /// deferral. Keyed by global AP id at derivation time.
    ap_rng: Vec<Xoshiro256>,
    wgtt_cfg: WgttConfig,
    /// AP MAC pipeline gates (indexed by AP id).
    ap_tx_scheduled: Vec<bool>,
    ap_exchange_pending: Vec<bool>,
    ap_backoff: Vec<u8>,
    ap_ba_timeout_ev: Vec<Option<EventId>>,
    /// Which client the pending exchange addresses (per AP).
    ap_current_peer: Vec<Option<NodeId>>,
    /// Uplink Block-ACK receive windows per (AP, client).
    ap_up_rx: HashMap<(NodeId, NodeId), BaRecipient>,
    /// Collected observables.
    pub report: RunReport,
    /// Instant at which the traffic sources start (the paper starts its
    /// flows with the client connected; a flow started toward a client
    /// that is still approaching coverage spends its time in TCP RTO
    /// backoff instead). Defaults to time zero.
    pub traffic_start: SimTime,
    /// Protect data A-MPDUs with an RTS/CTS handshake. Off by default —
    /// the testbed runs without it (§5.3.2) — and the ablation bench
    /// shows the fixed overhead outweighs the protection when collisions
    /// are rare.
    pub rts_cts: bool,
    /// Emit a per-event MAC trace to stderr (debugging only).
    pub trace: bool,
    /// When enabled, a tcpdump-style line is recorded for every frame
    /// that finishes on the air (see [`World::enable_frame_log`]).
    frame_log: Option<Vec<String>>,
    /// When enabled, every tunnelled data packet on the backhaul is
    /// captured as a real Ethernet/IP/UDP frame (Wireshark-compatible).
    backhaul_capture: Option<crate::pcap::PcapWriter>,
    /// IP ident counter for the capture's outer headers.
    capture_ident: u16,
    /// Trace only at or after this instant.
    pub trace_from: SimTime,
    /// Skip the per-(client, AP) ESNR-trace/accuracy sampling loop in
    /// `on_sample`. Fleet runs set this: with hundreds of vehicles and
    /// dozens of APs that loop is O(clients × APs) every 10 ms and the
    /// fleet report never reads the traces it would fill.
    pub sample_lean: bool,
    /// Prefill the per-link fused-power memos of every overhearing AP in
    /// one batched pass before each per-AP decode loop (the SoA PHY's
    /// multi-AP entry point). Priming is pure — no random draws, memo
    /// state only — so this toggle cannot change any simulation outcome;
    /// `batch_equivalence.rs` pins on/off runs to identical reports. Off
    /// exists only as the comparison baseline.
    pub batch_esnr: bool,
    /// Scratch for the sampling loop's batched per-AP ESNR map (reused
    /// across clients and ticks; zero steady-state allocation).
    esnr_scratch: Vec<f64>,
    /// Pool of reusable controller action buffers. Dispatching a
    /// controller action can recursively produce more controller work
    /// (a forwarded uplink TCP ack emits fresh downlink segments), so
    /// each dispatch depth pops its own buffer and returns it cleared —
    /// depth-first order preserved, zero steady-state allocation.
    ctl_bufs: Vec<ActionBuf>,
    end_at: SimTime,
}

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
/// Period of mobility/position refresh.
const MOBILITY_TICK: SimDuration = SimDuration::from_millis(10);
/// Period of serving-AP/accuracy sampling.
const SAMPLE_TICK: SimDuration = SimDuration::from_millis(10);
/// How long a sender waits for a Block ACK before declaring it lost
/// (covers SIFS + response + a forwarded copy over the backhaul).
const BA_WAIT: SimDuration = SimDuration::from_micros(1500);
/// Beacon interval for the baseline schemes (§5.1: 100 ms).
const BEACON_INTERVAL: SimDuration = SimDuration::from_millis(100);
/// Roamer poll cadence (drives handshake retries between beacons).
const ROAM_POLL: SimDuration = SimDuration::from_millis(25);
/// Conference loss-feedback cadence.
const CONF_FEEDBACK: SimDuration = SimDuration::from_secs(1);
/// UDP payload size used by the CBR sources (iperf3-style).
const UDP_LEN: u16 = 1500;
/// Conference UDP chunk payload size.
const CONF_CHUNK: u32 = 1200;
/// Client keepalive (NULL-data) interval.
const KEEPALIVE_INTERVAL: SimDuration = SimDuration::from_millis(50);
/// Smallest gap between decoded downlink A-MPDUs counted as an outage.
/// Below this, the gap is ordinary contention/backoff; above it, the
/// client perceptibly stalled (≈ two baseline beacon intervals).
const OUTAGE_MIN: SimDuration = SimDuration::from_millis(200);
/// CSI estimation error applied to *measured* ESNR readings (the true
/// channel still decides delivery) — the reason a single reading is noisy
/// and the paper's median-over-W smoothing matters (Fig. 21).
const CSI_NOISE_DB: f64 = 1.5;
/// Capture threshold: a reception survives an overlap when the wanted
/// signal exceeds the strongest interferer by this margin at the receiver.
const CAPTURE_MARGIN_DB: f64 = 10.0;
/// Sentinel packet id for keepalive frames (no packet-store entry).
const KEEPALIVE_PKT_ID: u64 = u64::MAX;
/// Beyond this AP–client distance a frame is unreceivable (the roadside
/// path loss puts the PER at ≈1 well before 120 m), so the every-AP
/// decode loops skip the pair without consuming a random draw. The skip
/// is what keeps per-entity RNG streams identical between a monolithic
/// world and its spatial shards: a shard never even iterates far-away
/// APs, so the monolithic world must not draw for them.
const DECODE_HORIZON_M: f64 = 120.0;

impl World {
    /// Build a world: testbed geometry + system + per-client flows
    /// (parallel arrays: `flow_specs[i]` applies to `clients[i]` of the
    /// testbed config; use [`World::new_multi`] for several flows per
    /// client).
    pub fn new(
        cfg: TestbedConfig,
        system: SystemKind,
        flow_specs: Vec<FlowSpec>,
        seed: u64,
    ) -> Self {
        let specs: Vec<(usize, FlowSpec)> = flow_specs.into_iter().enumerate().collect();
        Self::new_multi(cfg, system, specs, seed)
    }

    /// Build a world with `(client_index, spec)` flow attachments.
    pub fn new_multi(
        cfg: TestbedConfig,
        system: SystemKind,
        flow_specs: Vec<(usize, FlowSpec)>,
        seed: u64,
    ) -> Self {
        let root = RngStream::root(seed);
        let mut medium = Medium::roadside();
        let ap_positions = cfg.ap_positions();
        let n_aps = ap_positions.len();
        // Client ids historically start at 100; a fleet corridor with
        // ≥ 100 APs would alias AP ids into the client range, so the
        // base moves up with the AP count (identical to the old scheme
        // for every world the paper experiments build). Shards of a
        // larger corridor pass the fleet-wide base explicitly so client
        // ids stay global.
        let client_base = cfg
            .client_id_first
            .unwrap_or_else(|| 100u32.max(n_aps as u32));

        // Radio links: one fading realization per (AP, client) pair,
        // shared verbatim between compared systems at equal seeds.
        let boresight = cfg.ap_boresight_rad.unwrap_or(-std::f64::consts::FRAC_PI_2);
        let mut links = HashMap::new();
        for (ai, &ap_pos) in ap_positions.iter().enumerate() {
            let ap_id = NodeId(cfg.ap_id_offset + ai as u32);
            medium.set_position(ap_id, ap_pos);
            if let Some(&ch) = cfg.ap_channels.get(ai) {
                medium.set_channel(ap_id, ch);
            }
            for (ci, plan) in cfg.clients.iter().enumerate() {
                let client_id = NodeId(client_base + ci as u32);
                let stream = root
                    .derive("link")
                    .derive_indexed("ap", u64::from(cfg.ap_id_offset) + ai as u64)
                    .derive_indexed("client", (cfg.client_index_offset + ci) as u64);
                links.insert(
                    (ap_id, client_id),
                    Link {
                        ap_pos,
                        ap_boresight_rad: boresight,
                        ap_antenna: ParabolicAntenna::laird_gd24bp(),
                        client_antenna_dbi: 0.0,
                        budget: LinkBudget::default(),
                        pathloss: PathLossModel::roadside(),
                        fading: FadingProcess::new(stream, plan.speed_mps.max(0.3), 9.0),
                        shadowing: None,
                        memo: Default::default(),
                    },
                );
            }
        }

        let wgtt_cfg = match system {
            SystemKind::Wgtt(c) => c,
            _ => WgttConfig::default(),
        };

        let ap_ids: Vec<NodeId> = (0..n_aps as u32)
            .map(|ai| NodeId(cfg.ap_id_offset + ai))
            .collect();
        let system_state = match system {
            SystemKind::Wgtt(c) => SystemState::Wgtt {
                controller: Controller::new(c, ap_ids.clone()),
                aps: ap_ids
                    .iter()
                    .map(|&id| ApAgent::new(id, c, root.derive_indexed("ap-agent", id.0 as u64)))
                    .collect(),
            },
            SystemKind::Enhanced80211r | SystemKind::Stock80211r => SystemState::Baseline {
                ds: DistributionSystem::new(),
                aps: ap_ids
                    .iter()
                    .map(|&id| BaselineAp::new(id, root.derive_indexed("bl-ap", id.0 as u64)))
                    .collect(),
            },
        };

        let clients: Vec<ClientNode> = cfg
            .clients
            .iter()
            .enumerate()
            .map(|(ci, &plan)| {
                let gci = cfg.client_index_offset + ci;
                let id = NodeId(client_base + ci as u32);
                medium.set_position(id, plan.position_at(SimTime::ZERO));
                let roamer = match system {
                    SystemKind::Wgtt(_) => None,
                    SystemKind::Enhanced80211r => Some(Roamer::new(RoamerMode::Enhanced {
                        hysteresis: SimDuration::from_secs(1),
                    })),
                    SystemKind::Stock80211r => Some(Roamer::new(RoamerMode::Stock {
                        history: SimDuration::from_secs(5),
                    })),
                };
                ClientNode {
                    id,
                    plan,
                    // Client addresses spread over the low two octets:
                    // `100 + gci` would overflow the single-octet form at
                    // gci = 156, which a fleet-sized world reaches easily.
                    // The *global* index keeps shard addressing identical
                    // to the monolithic world's.
                    ip: Ipv4Addr::new(172, 16, ((100 + gci) >> 8) as u8, (100 + gci) as u8),
                    ba_rx: HashMap::new(),
                    up_fresh: std::collections::VecDeque::new(),
                    up_retries: Vec::new(),
                    up_ba: BaOriginator::default(),
                    up_next_seq: 0,
                    up_rate: RateController::new(
                        root.derive_indexed("client-rate", gci as u64).rng(),
                    ),
                    rng: root.derive_indexed("client-phy", gci as u64).rng(),
                    up_in_flight_meta: None,
                    roamer,
                    tx_scheduled: false,
                    exchange_pending: false,
                    backoff_stage: 0,
                    ba_timeout_ev: None,
                    up_mpdus_sent: 0,
                    up_mpdu_retx: 0,
                }
            })
            .collect();

        let mut world = World {
            system_kind: system,
            queue: EventQueue::new(),
            medium,
            links,
            system: system_state,
            clients,
            client_base,
            flows: Vec::new(),
            factory: PacketFactory::new(),
            packets: HashMap::new(),
            ap_rng: ap_ids
                .iter()
                .map(|&id| root.derive_indexed("ap-phy", u64::from(id.0)).rng())
                .collect(),
            wgtt_cfg,
            ap_tx_scheduled: vec![false; n_aps],
            ap_exchange_pending: vec![false; n_aps],
            ap_backoff: vec![0; n_aps],
            ap_ba_timeout_ev: vec![None; n_aps],
            ap_current_peer: vec![None; n_aps],
            ap_up_rx: HashMap::new(),
            report: RunReport::default(),
            traffic_start: SimTime::ZERO,
            rts_cts: false,
            trace: false,
            frame_log: None,
            backhaul_capture: None,
            capture_ident: 0,
            trace_from: SimTime::ZERO,
            sample_lean: false,
            batch_esnr: true,
            esnr_scratch: Vec::new(),
            ctl_bufs: Vec::new(),
            end_at: SimTime::ZERO,
            cfg,
        };
        if let SystemState::Wgtt { controller, .. } = &mut world.system {
            controller.reserve_clients(world.clients.len());
        }
        for (ci, spec) in flow_specs {
            world.attach_flow(ci, spec);
        }
        world
    }

    /// Attach one flow to client index `ci`.
    fn attach_flow(&mut self, ci: usize, spec: FlowSpec) {
        let flow_id = FlowId(self.flows.len() as u32);
        let client = self.clients[ci].id;
        let client_ip = self.clients[ci].ip;
        let kind = match spec {
            FlowSpec::DownlinkUdp { rate_mbps } => FlowKind::DownUdp {
                src: CbrUdpSource::new(
                    flow_id,
                    SERVER_IP,
                    client_ip,
                    rate_mbps,
                    UDP_LEN,
                    SimTime::ZERO,
                ),
                sink: wgtt_net::flow::UdpFlowSink::new(),
            },
            FlowSpec::UplinkUdp { rate_mbps } => FlowKind::UpUdp {
                src: CbrUdpSource::new(
                    flow_id,
                    client_ip,
                    SERVER_IP,
                    rate_mbps,
                    UDP_LEN,
                    SimTime::ZERO,
                ),
                sink: wgtt_net::flow::UdpFlowSink::new(),
            },
            FlowSpec::DownlinkTcpBulk => FlowKind::DownTcp {
                snd: TcpSender::bulk(TcpConfig::default()),
                rcv: TcpReceiver::new(),
                meter: ThroughputMeter::new(),
                delivered_trace: Vec::new(),
                limit: None,
            },
            FlowSpec::DownlinkTcpBytes { bytes } => FlowKind::DownTcp {
                snd: TcpSender::with_limit(TcpConfig::default(), bytes),
                rcv: TcpReceiver::new(),
                meter: ThroughputMeter::new(),
                delivered_trace: Vec::new(),
                limit: Some(bytes),
            },
            FlowSpec::DownlinkConference { adaptive } => FlowKind::DownConf {
                src: if adaptive {
                    ConferenceSource::adaptive(SimTime::ZERO)
                } else {
                    ConferenceSource::fixed(SimTime::ZERO)
                },
                asm: FrameAssembly::default(),
                sink: ConferenceSink::new(),
                next_seq: 0,
            },
            FlowSpec::UplinkConference { adaptive } => FlowKind::UpConf {
                src: if adaptive {
                    ConferenceSource::adaptive(SimTime::ZERO)
                } else {
                    ConferenceSource::fixed(SimTime::ZERO)
                },
                asm: FrameAssembly::default(),
                sink: ConferenceSink::new(),
                next_seq: 0,
            },
        };
        self.flows.push(Flow {
            id: flow_id,
            client,
            kind,
        });
    }

    // ------------------------------------------------------------ helpers

    fn client_index(&self, id: NodeId) -> usize {
        debug_assert!(
            id.0 >= self.client_base,
            "client_index called with a non-client id {id:?}"
        );
        id.0.saturating_sub(self.client_base) as usize
    }

    fn is_ap(&self, id: NodeId) -> bool {
        id.0 >= self.cfg.ap_id_offset
            && ((id.0 - self.cfg.ap_id_offset) as usize) < self.cfg.ap_x.len()
    }

    /// Local index of an AP in the per-AP vectors (AP ids are global;
    /// a shard's vectors cover only its own slice of the corridor).
    fn ap_index(&self, ap: NodeId) -> usize {
        debug_assert!(self.is_ap(ap), "ap_index on non-AP id {ap:?}");
        (ap.0 - self.cfg.ap_id_offset) as usize
    }

    /// Global NodeId of the AP at local index `aui`.
    fn ap_id(&self, aui: usize) -> NodeId {
        NodeId(self.cfg.ap_id_offset + aui as u32)
    }

    /// Whether `ap` is close enough to `client` for any frame between
    /// them to be decodable at all. Pure geometry (the drive plan and
    /// the static AP grid), so both the monolithic world and a spatial
    /// shard skip exactly the same pairs — before any random draw.
    fn within_decode_horizon(&self, ap: NodeId, client: NodeId, now: SimTime) -> bool {
        let apos = self.medium.position(ap);
        self.client_pos(client, now).distance_to(apos) <= DECODE_HORIZON_M
    }

    fn client_pos(&self, id: NodeId, now: SimTime) -> wgtt_radio::Position {
        self.clients[self.client_index(id)].plan.position_at(now)
    }

    fn link(&self, ap: NodeId, client: NodeId) -> &Link {
        self.links
            .get(&(ap, client))
            .expect("link exists for every (AP, client) pair")
    }

    /// ESNR of the (ap, client) link right now, under the reference
    /// 16-QAM constellation (the controller's selection metric).
    fn esnr_now(&self, ap: NodeId, client: NodeId, now: SimTime) -> f64 {
        let pos = self.client_pos(client, now);
        self.link(ap, client)
            .esnr_db_at(now, pos, Modulation::Qam16)
    }

    /// Batched prefill of every overhearing link's fused-power memo
    /// before a per-AP decode loop: one vectorized synthesis pass per AP
    /// within the decode horizon on the client's channel, after which
    /// the loop's `rx_survives`/`roll_mpdu`/`measured_esnr` queries at
    /// the same `(now, position)` are pure memo hits. The gates here are
    /// exactly the loop's *pure* gates (geometry and channel — never the
    /// capture check, which may consult other links), and priming draws
    /// no randomness, so RNG streams are untouched and the toggle is
    /// outcome-invariant.
    fn prime_esnr_maps(&self, client: NodeId, now: SimTime) {
        if !self.batch_esnr {
            return;
        }
        let pos = self.client_pos(client, now);
        let n_aps = self.cfg.ap_x.len() as u32;
        let off = self.cfg.ap_id_offset;
        let links = (0..n_aps)
            .map(|ai| NodeId(off + ai))
            .filter(|&ap| {
                self.within_decode_horizon(ap, client, now) && self.medium.same_channel(client, ap)
            })
            .map(|ap| self.link(ap, client));
        wgtt_radio::batch::prime(links, now, pos, Modulation::Qam16);
    }

    /// The ESNR an AP *measures* from one frame's CSI: the true value
    /// plus estimation noise. Selection consumes these; delivery rolls
    /// use the true channel.
    fn measured_esnr(&mut self, ap: NodeId, client: NodeId, now: SimTime) -> f64 {
        let true_esnr = self.esnr_now(ap, client, now);
        let ci = self.client_index(client);
        true_esnr + self.clients[ci].rng.normal_with(0.0, CSI_NOISE_DB)
    }

    /// Received power of a transmission from `a` at `b`, dBm, for
    /// capture comparisons. Uses the modelled link where one exists
    /// (AP↔client); AP↔AP and client↔client interference falls back to
    /// the path-loss model with omni gains.
    fn rssi_between(&self, a: NodeId, b: NodeId, now: SimTime) -> f64 {
        let (ap, client) = if self.is_ap(a) && !self.is_ap(b) {
            (a, b)
        } else if self.is_ap(b) && !self.is_ap(a) {
            (b, a)
        } else {
            // No fading model for same-kind pairs; large-scale only.
            let pa = if self.is_ap(a) {
                self.medium.position(a)
            } else {
                self.client_pos(a, now)
            };
            let pb = if self.is_ap(b) {
                self.medium.position(b)
            } else {
                self.client_pos(b, now)
            };
            let pl = PathLossModel::roadside().loss_db(pa.distance_to(pb));
            return LinkBudget::default().tx_power_dbm - pl;
        };
        let pos = self.client_pos(client, now);
        // Power only — the fused sweep path; no 56-coefficient CSI
        // materialization for a capture comparison that never reads it.
        self.link(ap, client).rssi_dbm_at(now, pos)
    }

    /// Capture-aware reception check: a temporal overlap only corrupts
    /// the frame when the strongest interferer is within
    /// [`CAPTURE_MARGIN_DB`] of the wanted signal at the receiver — the
    /// power disparity the paper credits (sidelobes) for its negligible
    /// ACK collision rate (§5.3.2).
    fn rx_survives(&self, tx: TxId, from: NodeId, rx: NodeId, now: SimTime) -> bool {
        if self.medium.outcome_for(tx, rx) == TxOutcome::Clean {
            return true;
        }
        // RTS/CTS-protected data frames reserve the medium: neighbours
        // that heard the CTS defer, so a recorded overlap cannot corrupt
        // the protected payload (the RTS itself risks collision, but it
        // is short — we fold that into the fixed overhead).
        if self.rts_cts && self.is_ap(from) {
            return true;
        }
        let wanted = self.rssi_between(from, rx, now);
        // Only overlappers that can actually corrupt this receiver
        // (same channel, within interference range) enter the capture
        // comparison — a sender several cells away overlaps in time but
        // contributes nothing here, exactly as in `Medium::outcome_for`.
        let worst = self
            .medium
            .interferers_for(tx, rx)
            .into_iter()
            .map(|n| self.rssi_between(n, rx, now))
            .fold(f64::NEG_INFINITY, f64::max);
        wanted - worst >= CAPTURE_MARGIN_DB
    }

    /// Roll delivery of one MPDU of `len` bytes at `mcs` over the
    /// (ap, client) link at `now`.
    fn roll_mpdu(&mut self, ap: NodeId, client: NodeId, now: SimTime, mcs: Mcs, len: u16) -> bool {
        let pos = self.client_pos(client, now);
        let esnr = self.link(ap, client).esnr_db_at(now, pos, mcs.modulation());
        let per = mcs.per(esnr, len);
        let ci = self.client_index(client);
        !self.clients[ci].rng.chance(per)
    }

    /// Roll reception of a short control frame (Block ACK, ACK, beacon,
    /// management) which is sent at a robust basic rate.
    fn roll_control(&mut self, ap: NodeId, client: NodeId, now: SimTime) -> bool {
        let pos = self.client_pos(client, now);
        let esnr = self.link(ap, client).esnr_db_at(now, pos, Modulation::Qpsk);
        // 32-byte control frame at the 24 Mbit/s basic rate ≈ MCS2 PER.
        let per = Mcs::Mcs2.per(esnr, 64);
        let ci = self.client_index(client);
        !self.clients[ci].rng.chance(per)
    }

    fn store_packet(&mut self, p: Packet) {
        self.packets.insert(p.id, p);
    }

    /// The Block ACK receive-window key for a downlink transmitter: the
    /// shared BSSID under WGTT, the individual AP otherwise.
    fn ba_rx_key(&self, ap: NodeId) -> NodeId {
        match self.system {
            SystemState::Wgtt { .. } => NodeId(u32::MAX),
            SystemState::Baseline { .. } => ap,
        }
    }

    /// Resolve an in-flight packet ref. `None` — a ref outliving its
    /// store entry (duplicate delivery racing cleanup in a large world)
    /// — is the caller's cue to skip the frame, not a crash.
    fn packet_by_ref(&self, r: PacketRef) -> Option<Packet> {
        self.packets.get(&r.id).copied()
    }

    // -------------------------------------------------------- run control

    /// Run the world for `duration`, returning when the queue drains past
    /// it. Consumes nothing; results accumulate in [`World::report`].
    /// Client node ids in client-index order (index `ci` of the plan /
    /// flow-attachment APIs maps to `client_ids()[ci]`).
    pub fn client_ids(&self) -> Vec<NodeId> {
        self.clients.iter().map(|c| c.id).collect()
    }

    pub fn run(&mut self, duration: SimDuration) {
        self.begin(duration);
        self.advance_until(self.end_at());
        self.finish();
    }

    /// Start a run without driving it: set the horizon and bootstrap the
    /// periodic machinery. Pair with [`World::advance_until`] and
    /// [`World::finish`] — the sharded engine advances many worlds in
    /// lockstep windows. `begin` + `advance_until(end)` + `finish` is
    /// exactly [`World::run`].
    pub fn begin(&mut self, duration: SimDuration) {
        self.end_at = SimTime::ZERO + duration;
        self.report.duration = duration;
        self.bootstrap();
    }

    /// The run horizon set by [`World::begin`].
    pub fn end_at(&self) -> SimTime {
        self.end_at
    }

    /// Drain every event up to `until` (capped at the run horizon).
    /// Advancing in windows is byte-identical to one straight pass: the
    /// queue pops in (time, insertion) order either way.
    pub fn advance_until(&mut self, until: SimTime) {
        let cap = if until < self.end_at {
            until
        } else {
            self.end_at
        };
        while let Some((now, ev)) = self.queue.pop_until(cap) {
            self.report.events_handled += 1;
            self.handle(now, ev);
        }
    }

    /// Close out the run: fold per-flow and per-client observables into
    /// [`World::report`].
    pub fn finish(&mut self) {
        self.finalize();
    }

    fn bootstrap(&mut self) {
        // Initial association: strongest mean-SNR AP at the start position.
        let client_ids: Vec<NodeId> = self.clients.iter().map(|c| c.id).collect();
        for client in client_ids {
            let pos = self.client_pos(client, SimTime::ZERO);
            let best_ap = (0..self.cfg.ap_x.len())
                .map(|aui| self.ap_id(aui))
                .max_by(|&a, &b| {
                    let sa = self.link(a, client).mean_snr_db(pos);
                    let sb = self.link(b, client).mean_snr_db(pos);
                    sa.partial_cmp(&sb).expect("SNR is never NaN")
                })
                .expect("at least one AP");
            match &mut self.system {
                SystemState::Wgtt { .. } => {
                    self.with_controller(SimTime::ZERO, |c, buf| {
                        c.on_client_associated(client, best_ap, SimTime::ZERO, buf);
                    });
                }
                SystemState::Baseline { ds, .. } => {
                    ds.attach(client, best_ap);
                    let ci = self.client_index(client);
                    self.clients[ci]
                        .roamer
                        .as_mut()
                        .expect("baseline clients roam")
                        .set_associated(best_ap, SimTime::ZERO);
                }
            }
        }
        // Periodic machinery.
        self.queue
            .schedule(SimTime::ZERO + MOBILITY_TICK, Ev::Mobility);
        self.queue
            .schedule(SimTime::ZERO + SAMPLE_TICK, Ev::SampleState);
        if matches!(
            self.system_kind,
            SystemKind::Enhanced80211r | SystemKind::Stock80211r
        ) {
            for ai in 0..self.cfg.ap_x.len() {
                // Stagger beacons across APs as real deployments do.
                let offset =
                    SimDuration::from_millis((ai as u64 * 100) / self.cfg.ap_x.len() as u64);
                self.queue.schedule(
                    SimTime::ZERO + offset,
                    Ev::Beacon {
                        ap: NodeId(self.cfg.ap_id_offset + ai as u32),
                        retry: false,
                    },
                );
            }
            for c in &self.clients {
                self.queue
                    .schedule(SimTime::ZERO + ROAM_POLL, Ev::RoamPoll { client: c.id });
            }
        }
        // Client keepalives (staggered so they never systematically
        // collide with each other).
        for (ci, c) in self.clients.iter().enumerate() {
            let gci = self.cfg.client_index_offset + ci;
            self.queue.schedule(
                SimTime::ZERO + SimDuration::from_millis(1 + gci as u64 * 7),
                Ev::Keepalive { client: c.id },
            );
        }
        // Traffic.
        let t0 = self.traffic_start;
        for fi in 0..self.flows.len() {
            let id = self.flows[fi].id;
            match &mut self.flows[fi].kind {
                FlowKind::DownUdp { src, .. } | FlowKind::UpUdp { src, .. } => src.defer_start(t0),
                FlowKind::DownConf { src, .. } | FlowKind::UpConf { src, .. } => {
                    src.defer_start(t0)
                }
                FlowKind::DownTcp { .. } => {}
            }
            self.queue.schedule(t0, Ev::Traffic { flow: id });
            if matches!(
                self.flows[fi].kind,
                FlowKind::DownConf { .. } | FlowKind::UpConf { .. }
            ) {
                self.queue
                    .schedule(t0 + CONF_FEEDBACK, Ev::ConfFeedback { flow: id });
            }
        }
    }

    /// One-line diagnostic summary of internal counters (for examples and
    /// debugging; not part of the experiment surface).
    pub fn debug_summary(&self) -> String {
        match &self.system {
            SystemState::Wgtt { controller, aps } => {
                let ap_stats: Vec<String> = aps
                    .iter()
                    .map(|a| {
                        format!(
                            "ap{}[ampdu={} mpdu={} ba={} fwd={} to={} stop={} start={}]",
                            a.id.0,
                            a.stats.ampdus_sent,
                            a.stats.mpdus_sent,
                            a.stats.block_acks_applied,
                            a.stats.forwarded_ba_used,
                            a.stats.ba_timeouts,
                            a.stats.stops_handled,
                            a.stats.starts_handled
                        )
                    })
                    .collect();
                format!(
                    "ctl: started={} completed={} retx={} no_ap={} up_fwd={} up_dup={}\n{}",
                    controller.stats.switches_started,
                    controller.stats.switches_completed,
                    controller.stats.stop_retransmits,
                    controller.stats.downlink_no_ap,
                    controller.stats.uplink_forwarded,
                    controller.stats.uplink_duplicates,
                    ap_stats.join("\n")
                )
            }
            SystemState::Baseline { ds, aps } => {
                let drops: u64 = aps.iter().map(|a| a.queue_drops).sum();
                format!(
                    "ds moves={} unbound={} q_drops={}",
                    ds.moves, ds.unbound_drops, drops
                )
            }
        }
    }

    fn trace_at(&self, now: SimTime) -> bool {
        self.trace && now >= self.trace_from
    }

    /// Record a tcpdump-style line for every frame that completes on the
    /// air. Read the result with [`World::frame_log`] after `run`.
    pub fn enable_frame_log(&mut self) {
        self.frame_log = Some(Vec::new());
    }

    /// Capture the backhaul's tunnelled data packets as a pcap (see
    /// [`crate::pcap`]); retrieve it with [`World::backhaul_capture`].
    pub fn enable_backhaul_capture(&mut self) {
        self.backhaul_capture = Some(crate::pcap::PcapWriter::new());
    }

    /// The backhaul capture, if enabled.
    pub fn backhaul_capture(&self) -> Option<&crate::pcap::PcapWriter> {
        self.backhaul_capture.as_ref()
    }

    fn capture_backhaul(&mut self, to: &BackhaulDest, msg: &BackhaulMsg, now: SimTime) {
        if self.backhaul_capture.is_none() {
            return;
        }
        // Node numbering in the capture: APs by id, controller = 0xFE.
        let dst = match to {
            BackhaulDest::Controller => 0xFEu8,
            BackhaulDest::Ap(id) => id.0 as u8,
        };
        let (src, kind, client, index, inner) = match msg {
            BackhaulMsg::DownlinkData {
                client,
                index,
                packet,
            } => (
                0xFEu8,
                wgtt_net::wire::TunnelKind::Downlink,
                client.0,
                *index,
                *packet,
            ),
            BackhaulMsg::UplinkData { ap, packet } => (
                ap.0 as u8,
                wgtt_net::wire::TunnelKind::Uplink,
                packet.flow.0,
                0,
                *packet,
            ),
            _ => return, // control/CSI messages are not data tunnels
        };
        let ident = self.capture_ident;
        self.capture_ident = self.capture_ident.wrapping_add(1);
        let frame = crate::pcap::encode_tunnel_frame(src, dst, ident, kind, client, index, &inner);
        self.backhaul_capture
            .as_mut()
            .expect("checked above")
            .record(now, frame);
    }

    /// The recorded frame log (empty unless enabled).
    pub fn frame_log(&self) -> &[String] {
        self.frame_log.as_deref().unwrap_or(&[])
    }

    fn log_frame(&mut self, now: SimTime, frame: &Frame) {
        let Some(log) = self.frame_log.as_mut() else {
            return;
        };
        let desc = match &frame.kind {
            FrameKind::Ampdu { mpdus } => format!(
                "A-MPDU {} MPDUs seq {}..{} @{:?}",
                mpdus.len(),
                mpdus.first().map(|m| m.seq).unwrap_or(0),
                mpdus.last().map(|m| m.seq).unwrap_or(0),
                frame.mcs
            ),
            FrameKind::BlockAck { start_seq, bitmap } => {
                format!("BlockAck start {} bitmap {:#x}", start_seq, bitmap)
            }
            FrameKind::Beacon => "Beacon".to_string(),
            FrameKind::Mgmt { step } => format!("Mgmt {step:?}"),
            FrameKind::Data { packet, .. } => format!("Data {} B", packet.len),
            FrameKind::Ack => "Ack".to_string(),
        };
        log.push(format!("{now} {} > {}: {desc}", frame.from, frame.to));
    }

    /// Record a decoded downlink A-MPDU for `client` and close any
    /// outage ([`OUTAGE_MIN`] or longer since the previous delivery,
    /// or since `traffic_start` for the first one).
    fn note_delivery(&mut self, client: NodeId, now: SimTime) {
        let from = self
            .report
            .last_delivery
            .get(&client)
            .copied()
            .unwrap_or(self.traffic_start);
        let gap = now.saturating_since(from);
        if gap >= OUTAGE_MIN {
            self.report
                .outage_durations
                .entry(client)
                .or_default()
                .record(gap.as_secs_f64());
        }
        self.report.last_delivery.insert(client, now);
    }

    fn finalize(&mut self) {
        // Pull per-flow observables into the report.
        for flow in &self.flows {
            match &flow.kind {
                FlowKind::DownUdp { src, sink } | FlowKind::UpUdp { src, sink } => {
                    self.report
                        .udp_counts
                        .insert(flow.id, (u64::from(src.emitted()), sink.received()));
                    self.report.flow_meters.insert(flow.id, sink.meter.clone());
                }
                FlowKind::DownTcp {
                    meter,
                    delivered_trace,
                    snd,
                    ..
                } => {
                    self.report.flow_meters.insert(flow.id, meter.clone());
                    self.report
                        .tcp_delivery_traces
                        .insert(flow.id, delivered_trace.clone());
                    self.report.tcp_timeouts.insert(flow.id, snd.stats.timeouts);
                }
                FlowKind::DownConf { sink, .. } | FlowKind::UpConf { sink, .. } => {
                    let secs = self.report.duration.as_secs_f64().ceil() as usize;
                    self.report
                        .conference_sinks
                        .insert(flow.id, sink.fps_per_second(SimTime::ZERO, secs));
                }
            }
        }
        for c in &self.clients {
            self.report
                .uplink_mpdus
                .insert(c.id, (c.up_mpdus_sent, c.up_mpdu_retx));
            if let Some(r) = &c.roamer {
                self.report.failed_handshakes += r.failed_handshakes;
            }
        }
        // Close the trailing outage gap for clients that did deliver at
        // least once. Clients with no `last_delivery` entry are left
        // alone: the fleet layer reports them as one full-run outage
        // rather than inventing a zero-sample distribution here.
        //
        // A client whose downlink demand is entirely finite (web-style
        // transfers) and fully delivered goes legitimately quiet after
        // the last byte; that idle tail is not an outage. The trailing
        // gap is only closed for clients with open-ended downlink
        // demand or an unfinished finite transfer.
        let mut open_demand: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for flow in &self.flows {
            let open = match &flow.kind {
                FlowKind::DownUdp { .. } | FlowKind::DownConf { .. } => true,
                FlowKind::DownTcp { limit: None, .. } => true,
                FlowKind::DownTcp { limit: Some(_), .. } => {
                    !self.report.tcp_completion.contains_key(&flow.id)
                }
                FlowKind::UpUdp { .. } | FlowKind::UpConf { .. } => false,
            };
            if open {
                open_demand.insert(flow.client);
            }
        }
        for (client, last) in self.report.last_delivery.clone() {
            if !open_demand.contains(&client) {
                continue;
            }
            let gap = self.end_at.saturating_since(last);
            if gap >= OUTAGE_MIN {
                self.report
                    .outage_durations
                    .entry(client)
                    .or_default()
                    .record(gap.as_secs_f64());
            }
        }
        match &self.system {
            SystemState::Wgtt { controller, .. } => {
                self.report.switches = controller.stats.switches_completed;
                self.report.max_ap_load = controller.stats.max_ap_load;
                self.report.switch_durations = controller.stats.switch_durations.clone();
                self.report.uplink_dedup = (
                    controller.stats.uplink_forwarded,
                    controller.stats.uplink_duplicates,
                );
            }
            SystemState::Baseline { ds, .. } => {
                self.report.switches = ds.moves;
            }
        }
    }
}

include!("world_events.rs");
include!("world_mac.rs");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::ClientPlan;

    fn quick_world(system: SystemKind, spec: FlowSpec, seed: u64) -> World {
        let cfg = TestbedConfig::paper_array().with_clients(vec![ClientPlan::drive_by(15.0)]);
        World::new(cfg, system, vec![spec], seed)
    }

    #[test]
    fn wgtt_udp_drive_delivers_data() {
        let mut w = quick_world(
            SystemKind::Wgtt(WgttConfig::default()),
            FlowSpec::DownlinkUdp { rate_mbps: 20.0 },
            1,
        );
        // The drive starts 15 m before the array; measure once in range.
        w.run(SimDuration::from_secs(6));
        let meter = w.report.flow_meters.get(&FlowId(0)).expect("flow exists");
        let mbps = meter.mbps_over(SimTime::from_millis(1500), SimTime::from_secs(6));
        assert!(mbps > 3.0, "WGTT UDP goodput only {mbps} Mbit/s");
    }

    #[test]
    fn wgtt_switches_between_aps_during_drive() {
        let mut w = quick_world(
            SystemKind::Wgtt(WgttConfig::default()),
            FlowSpec::DownlinkUdp { rate_mbps: 20.0 },
            2,
        );
        w.run(SimDuration::from_secs(5));
        assert!(
            w.report.switches >= 3,
            "only {} switches over a 5 s drive",
            w.report.switches
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut w = quick_world(
                SystemKind::Wgtt(WgttConfig::default()),
                FlowSpec::DownlinkUdp { rate_mbps: 20.0 },
                seed,
            );
            w.run(SimDuration::from_secs(2));
            (
                w.report.switches,
                w.report
                    .flow_meters
                    .get(&FlowId(0))
                    .map(|m| m.total_bytes())
                    .unwrap_or(0),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn baseline_udp_also_delivers_some() {
        let mut w = quick_world(
            SystemKind::Enhanced80211r,
            FlowSpec::DownlinkUdp { rate_mbps: 20.0 },
            3,
        );
        w.run(SimDuration::from_secs(3));
        let meter = w.report.flow_meters.get(&FlowId(0)).expect("flow exists");
        assert!(meter.total_bytes() > 0, "baseline must deliver something");
    }

    // The WGTT-vs-baseline throughput comparison lives in
    // tests/integration_baseline.rs with full-transit windows and seed
    // averaging — a single short window is too noisy to assert on.

    #[test]
    fn tcp_flow_makes_progress_under_wgtt() {
        let mut w = quick_world(
            SystemKind::Wgtt(WgttConfig::default()),
            FlowSpec::DownlinkTcpBulk,
            5,
        );
        // Start the flow once the client is entering coverage, as the
        // paper's experiments do.
        w.traffic_start = SimTime::from_millis(1500);
        w.run(SimDuration::from_secs(5));
        let meter = w.report.flow_meters.get(&FlowId(0)).expect("flow exists");
        let mbps = meter.mbps_over(SimTime::from_millis(1500), SimTime::from_secs(5));
        assert!(mbps > 1.0, "TCP goodput only {mbps} Mbit/s");
    }

    #[test]
    fn uplink_udp_deduplicated_at_controller() {
        let mut w = quick_world(
            SystemKind::Wgtt(WgttConfig::default()),
            FlowSpec::UplinkUdp { rate_mbps: 10.0 },
            6,
        );
        w.run(SimDuration::from_secs(3));
        let (forwarded, dups) = w.report.uplink_dedup;
        assert!(forwarded > 100, "uplink forwarded only {forwarded}");
        assert!(dups > 0, "overlapping coverage must produce duplicates");
        // And the sink saw no duplicate deliveries.
        let (_sent, received) = w.report.udp_counts[&FlowId(0)];
        assert!(received <= forwarded);
    }

    // ------------------------------------------- outage accounting edges
    //
    // These drive `note_delivery`/`finalize` directly (same-module
    // access) so each boundary condition is pinned exactly, without a
    // full event run in the way.

    /// A fresh world with one open-demand downlink client, its horizon
    /// pinned at `end`, ready for hand-fed deliveries.
    fn outage_rig(end: SimDuration) -> (World, NodeId) {
        let mut w = quick_world(
            SystemKind::Wgtt(WgttConfig::default()),
            FlowSpec::DownlinkUdp { rate_mbps: 2.5 },
            1,
        );
        w.end_at = SimTime::ZERO + end;
        w.report.duration = end;
        let client = w.client_ids()[0];
        (w, client)
    }

    fn outage_samples(w: &World, client: NodeId) -> Vec<f64> {
        w.report
            .outage_durations
            .get(&client)
            .map(|d| d.cdf().into_iter().map(|(v, _)| v).collect())
            .unwrap_or_default()
    }

    #[test]
    fn outage_exactly_at_threshold_counts_and_a_hair_under_does_not() {
        let (mut w, client) = outage_rig(SimDuration::from_secs(1));
        // Exactly OUTAGE_MIN since traffic_start: `gap >= OUTAGE_MIN`
        // must include the boundary.
        w.note_delivery(client, SimTime::ZERO + OUTAGE_MIN);
        assert_eq!(outage_samples(&w, client), vec![0.2]);

        let (mut w2, c2) = outage_rig(SimDuration::from_secs(1));
        w2.note_delivery(c2, SimTime::from_micros(199_999));
        assert!(
            outage_samples(&w2, c2).is_empty(),
            "199.999 ms is not an outage"
        );
    }

    #[test]
    fn back_to_back_outages_split_by_zero_gap_delivery() {
        let (mut w, client) = outage_rig(SimDuration::from_secs(1));
        // First outage: nothing until 250 ms.
        w.note_delivery(client, SimTime::from_millis(250));
        // Zero-gap duplicate delivery at the same instant: no outage,
        // no corruption of the last-delivery anchor.
        w.note_delivery(client, SimTime::from_millis(250));
        // Second outage: silent again until 500 ms.
        w.note_delivery(client, SimTime::from_millis(500));
        assert_eq!(outage_samples(&w, client), vec![0.25, 0.25]);
        // Finalize closes the 500 ms → 1 s trailing gap as a third.
        w.finalize();
        assert_eq!(outage_samples(&w, client), vec![0.25, 0.25, 0.5]);
    }

    #[test]
    fn only_delivery_being_the_final_frame_closes_leading_gap_only() {
        let (mut w, client) = outage_rig(SimDuration::from_secs(1));
        // The one and only delivery lands exactly at the end of the run:
        // the leading 1 s gap is an outage; the trailing gap is zero and
        // must NOT be double-counted by the finalize pass.
        w.note_delivery(client, w.end_at);
        w.finalize();
        assert_eq!(outage_samples(&w, client), vec![1.0]);
    }

    #[test]
    fn trailing_gap_is_not_closed_for_uplink_only_demand() {
        // An uplink-only client goes quiet on the downlink legitimately;
        // finalize must not invent a trailing outage for it.
        let mut w = quick_world(
            SystemKind::Wgtt(WgttConfig::default()),
            FlowSpec::UplinkUdp { rate_mbps: 0.064 },
            1,
        );
        w.end_at = SimTime::ZERO + SimDuration::from_secs(1);
        w.report.duration = SimDuration::from_secs(1);
        let client = w.client_ids()[0];
        w.note_delivery(client, SimTime::from_millis(300));
        w.finalize();
        assert_eq!(
            outage_samples(&w, client),
            vec![0.3],
            "only the leading gap, never a trailing one, for uplink-only demand"
        );
    }
}
