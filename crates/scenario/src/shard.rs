//! # Sharded parallel world engine
//!
//! Runs a districted fleet corridor (see [`FleetConfig::districts`]) as
//! independent spatial shards on a scoped-thread pool, and merges the
//! per-shard reports deterministically. The sequential [`World`] stays
//! untouched as the oracle: `tests/integration_shard.rs` and
//! `crates/scenario/tests/prop_shard.rs` replay identical seeds through
//! both engines and assert bit-identical [`FleetReport`] aggregates.
//!
//! ## Why sharding is exact, not approximate
//!
//! Radio interactions in this simulator have hard finite range: carrier
//! sense and capture interference reach 40 m ([`Medium`]'s
//! interference range), and no frame decodes past the 120 m decode
//! horizon. A districted corridor places ≥ 150 m of empty road between
//! adjacent districts' reachable areas (160 m AP-block gap minus the
//! 5 m shuttle tails on each side), so *no event in one district can
//! observe another district* — not a frame, not a deferral, not a
//! capture comparison. Each district also gets its own controller: the
//! paper's controller state is per-client (selection windows, switch
//! machines, per-source dedup), so splitting it by district changes
//! nothing a client can see.
//!
//! With zero boundary events, *any* synchronization window is
//! conservative. The engine still advances shards in lockstep windows
//! (default: the 300 µs backhaul latency, the minimum delay any event
//! crossing a shard boundary would incur if districts ever did
//! interact) behind a [`Barrier`], because that is the structure a
//! future boundary-coupled decomposition needs — and varying the window
//! under the differential harness is the stress mode that pins the
//! engine's schedule-independence.
//!
//! ## Determinism
//!
//! Every shard is a [`World`] seeded by the same root seed deriving
//! per-entity streams from *global* ids, so a shard's draw sequence is
//! identical to the monolithic world's restricted to its district. The
//! merge is a fold in district order — stable `(district, vehicle)`
//! ordering, independent of which worker thread finished first — so the
//! merged report is a pure function of `(config, seed)`: the worker
//! count and the sync window cannot leak in.
//!
//! [`Medium`]: wgtt_mac::medium::Medium

use crate::fleet::{FleetConfig, FleetReport};
use crate::world::{SystemKind, World};
use std::sync::Barrier;
use wgtt_apps::mix::AppKind;
use wgtt_sim::time::{SimDuration, SimTime};

/// Default conservative lookahead between shard barriers: the backhaul
/// latency, i.e. the minimum delay any cross-shard event would incur.
pub const DEFAULT_SYNC_WINDOW: SimDuration = SimDuration::from_micros(300);

/// Run the districted corridor `cfg` on `workers` threads and merge the
/// per-district reports. `sync_window` overrides
/// [`DEFAULT_SYNC_WINDOW`] (the differential stress tests sweep it to
/// prove the schedule doesn't matter).
///
/// The result is bit-identical for every `workers ≥ 1` and every
/// window; with `cfg.districts == 1` it equals the sequential
/// [`FleetConfig::run`] outright.
pub fn run_sharded(
    cfg: &FleetConfig,
    system: SystemKind,
    seed: u64,
    workers: usize,
    sync_window: Option<SimDuration>,
) -> FleetReport {
    assert!(workers >= 1, "at least one worker");
    let window = sync_window.unwrap_or(DEFAULT_SYNC_WINDOW);
    assert!(window > SimDuration::from_micros(0), "zero-width window");
    let duration = cfg.duration;
    let worlds = cfg.district_worlds(system, seed);
    let n = worlds.len();

    // Deal districts round-robin onto workers, remembering each
    // district's index so the merge below is by district order, never
    // by completion order.
    let workers_used = workers.min(n);
    let mut buckets: Vec<Vec<(usize, World, Vec<AppKind>)>> =
        (0..workers_used).map(|_| Vec::new()).collect();
    for (d, (w, kinds)) in worlds.into_iter().enumerate() {
        buckets[d % workers_used].push((d, w, kinds));
    }

    let mut parts: Vec<Option<FleetReport>> = (0..n).map(|_| None).collect();
    if workers_used == 1 {
        // Single worker: same windowed schedule, no threads.
        for (d, world, kinds) in &mut buckets[0] {
            run_windows(world, duration, window, || {});
            parts[*d] = Some(FleetReport::from_world(world, kinds, cfg));
        }
    } else {
        let barrier = Barrier::new(workers_used);
        let results: Vec<Vec<(usize, FleetReport)>> = std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|mut bucket| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        let mut out = Vec::with_capacity(bucket.len());
                        for (_, world, _) in &mut bucket {
                            world.begin(duration);
                        }
                        let rounds = round_count(duration, window);
                        let mut t = SimTime::ZERO;
                        for _ in 0..rounds {
                            t += window;
                            for (_, world, _) in &mut bucket {
                                world.advance_until(t);
                            }
                            // Conservative-lookahead barrier: nobody
                            // enters window k+1 until every shard has
                            // drained window k.
                            barrier.wait();
                        }
                        for (d, world, kinds) in &mut bucket {
                            world.advance_until(world.end_at());
                            world.finish();
                            out.push((*d, FleetReport::from_world(world, kinds, cfg)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        for bucket in results {
            for (d, report) in bucket {
                parts[d] = Some(report);
            }
        }
    }
    let parts: Vec<FleetReport> = parts
        .into_iter()
        .map(|p| p.expect("every district produced a report"))
        .collect();
    FleetReport::merge(parts, cfg)
}

/// Advance one world through the full windowed schedule (the
/// single-worker path; `between` is a hook so the code path mirrors the
/// threaded one).
fn run_windows(
    world: &mut World,
    duration: SimDuration,
    window: SimDuration,
    mut between: impl FnMut(),
) {
    world.begin(duration);
    let rounds = round_count(duration, window);
    let mut t = SimTime::ZERO;
    for _ in 0..rounds {
        t += window;
        world.advance_until(t);
        between();
    }
    world.advance_until(world.end_at());
    world.finish();
}

/// Whole windows inside `duration`; the trailing partial window is
/// handled by the final `advance_until(end)`.
fn round_count(duration: SimDuration, window: SimDuration) -> u64 {
    duration.as_nanos() / window.as_nanos()
}
