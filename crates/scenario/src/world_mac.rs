// The MAC pipeline for `World`: contention, A-MPDU exchanges, Block ACK
// responses/forwarding, beacons, and baseline management frames.
// Textually included by world.rs.

/// Preamble-detection lag: a transmission younger than this is invisible
/// to carrier sense, allowing SIFS-spaced responses to collide.
const SENSE_LAG: SimDuration = SimDuration::from_micros(4);

impl World {
    // ------------------------------------------------------ AP pipeline

    fn ap_has_work(&self, ai: usize) -> bool {
        match &self.system {
            SystemState::Wgtt { aps, .. } => !aps[ai].tx_ready_clients().is_empty(),
            SystemState::Baseline { aps, .. } => !aps[ai].tx_ready_clients().is_empty(),
        }
    }

    fn kick_ap(&mut self, ap: NodeId, now: SimTime) {
        let ai = self.ap_index(ap);
        if self.trace_at(now) {
            eprintln!(
                "{now} kick_ap {ap} sched={} pend={} work={}",
                self.ap_tx_scheduled[ai],
                self.ap_exchange_pending[ai],
                self.ap_has_work(ai)
            );
        }
        if self.ap_tx_scheduled[ai] || self.ap_exchange_pending[ai] || !self.ap_has_work(ai) {
            return;
        }
        let at = self
            .medium
            .access_time(ap, now, self.ap_backoff[ai], &mut self.ap_rng[ai]);
        self.ap_tx_scheduled[ai] = true;
        self.queue.schedule(at, Ev::ApTxStart { ap });
    }

    fn on_ap_tx_start(&mut self, ap: NodeId, now: SimTime) {
        let ai = self.ap_index(ap);
        self.ap_tx_scheduled[ai] = false;
        if self.ap_exchange_pending[ai] {
            return;
        }
        if self.medium.is_busy_for(ap, now) || self.medium.own_tx_until(ap, now) > now {
            // Someone grabbed the channel during our backoff (or our own
            // previous frame is still on the air): re-contend.
            self.kick_ap(ap, now);
            return;
        }
        let built = match &mut self.system {
            SystemState::Wgtt { aps, .. } => aps[ai]
                .next_tx_client()
                .and_then(|c| aps[ai].build_txop(c, now).map(|(m, r)| (c, m, r))),
            SystemState::Baseline { aps, .. } => aps[ai]
                .next_tx_client()
                .and_then(|c| aps[ai].build_txop(c).map(|(m, r)| (c, m, r))),
        };
        if self.trace_at(now) {
            eprintln!("{now} ap_tx_start {ap} built={}", built.is_some());
        }
        let Some((client, mpdus, mcs)) = built else {
            return;
        };
        let frame = Frame {
            from: ap,
            to: client,
            kind: FrameKind::Ampdu { mpdus },
            mcs,
        };
        let dur = frame_airtime(&frame);
        if self.trace_at(now) {
            eprintln!("{now} ap_begin_tx {ap} dur={dur}");
        }
        let tx = self.medium.begin_tx(ap, now, dur);
        self.ap_exchange_pending[ai] = true;
        self.ap_current_peer[ai] = Some(client);
        self.queue.schedule(now + dur, Ev::TxEnd { tx, frame });
    }

    fn resolve_ap_exchange(&mut self, ap: NodeId, now: SimTime) {
        let ai = self.ap_index(ap);
        if self.trace_at(now) {
            eprintln!("{now} resolve_ap_exchange {ap}");
        }
        if let Some(ev) = self.ap_ba_timeout_ev[ai].take() {
            self.queue.cancel(ev);
        }
        self.ap_exchange_pending[ai] = false;
        self.ap_current_peer[ai] = None;
        self.ap_backoff[ai] = 0;
        self.kick_ap(ap, now);
    }

    fn on_ap_ba_timeout(&mut self, ap: NodeId, client: NodeId, now: SimTime) {
        let ai = self.ap_index(ap);
        if self.trace_at(now) {
            eprintln!("{now} ap_ba_timeout {ap}");
        }
        self.ap_ba_timeout_ev[ai] = None;
        match &mut self.system {
            SystemState::Wgtt { aps, .. } => {
                aps[ai].on_ba_timeout(client);
            }
            SystemState::Baseline { aps, .. } => {
                aps[ai].on_ba_timeout(client);
            }
        }
        self.ap_exchange_pending[ai] = false;
        self.ap_current_peer[ai] = None;
        self.ap_backoff[ai] = (self.ap_backoff[ai] + 1).min(6);
        self.kick_ap(ap, now);
    }

    // -------------------------------------------------- client pipeline

    fn kick_client(&mut self, client: NodeId, now: SimTime) {
        let ci = self.client_index(client);
        let c = &self.clients[ci];
        if c.tx_scheduled
            || c.exchange_pending
            || c.up_ba.has_in_flight()
            || (c.up_fresh.is_empty() && c.up_retries.is_empty())
        {
            return;
        }
        let stage = c.backoff_stage;
        let at = self
            .medium
            .access_time(client, now, stage, &mut self.clients[ci].rng);
        self.clients[ci].tx_scheduled = true;
        self.queue.schedule(at, Ev::ClientTxStart { client });
    }

    fn on_client_tx_start(&mut self, client: NodeId, now: SimTime) {
        let ci = self.client_index(client);
        self.clients[ci].tx_scheduled = false;
        if self.clients[ci].exchange_pending {
            return;
        }
        if self.medium.is_busy_for(client, now)
            || self.medium.own_tx_until(client, now) > now
        {
            self.kick_client(client, now);
            return;
        }
        let target = self
            .serving_of(client)
            .unwrap_or(NodeId(self.cfg.ap_id_offset));
        let c = &mut self.clients[ci];
        let policy = wgtt_mac::aggregation::AggregationPolicy::default();
        let mcs = c.up_rate.select();
        let mpdus = wgtt_mac::aggregation::build_ampdu(
            &mut c.up_retries,
            &mut c.up_fresh,
            &policy,
            mcs,
        );
        if mpdus.is_empty() {
            return;
        }
        c.up_in_flight_meta = Some((mcs, mpdus.len()));
        c.up_ba.on_ampdu_sent(mpdus.clone());
        c.exchange_pending = true;
        let frame = Frame {
            from: client,
            to: target,
            kind: FrameKind::Ampdu { mpdus },
            mcs,
        };
        let dur = frame_airtime(&frame);
        let tx = self.medium.begin_tx(client, now, dur);
        self.queue.schedule(now + dur, Ev::TxEnd { tx, frame });
    }

    fn resolve_client_exchange(&mut self, client: NodeId, now: SimTime) {
        let ci = self.client_index(client);
        if let Some(ev) = self.clients[ci].ba_timeout_ev.take() {
            self.queue.cancel(ev);
        }
        self.clients[ci].exchange_pending = false;
        self.clients[ci].backoff_stage = 0;
        self.kick_client(client, now);
    }

    fn on_client_ba_timeout(&mut self, client: NodeId, now: SimTime) {
        let ci = self.client_index(client);
        self.clients[ci].ba_timeout_ev = None;
        let c = &mut self.clients[ci];
        if c.up_ba.has_in_flight() {
            let r = c.up_ba.on_ba_timeout();
            if let Some((mcs, attempted)) = c.up_in_flight_meta.take() {
                c.up_rate.on_feedback(mcs, attempted, 0);
            }
            c.up_retries.extend(r.to_retry.iter().copied());
        }
        c.exchange_pending = false;
        c.backoff_stage = (c.backoff_stage + 1).min(6);
        self.kick_client(client, now);
    }

    // ------------------------------------------------------ frame ends

    fn on_tx_end(&mut self, tx: TxId, frame: Frame, now: SimTime) {
        self.report.frames_on_air += 1;
        self.log_frame(now, &frame);
        match frame.kind {
            FrameKind::Ampdu { ref mpdus } if self.is_ap(frame.from) => {
                let mpdus = mpdus.clone();
                self.end_downlink_data(tx, frame.from, frame.to, mpdus, frame.mcs, now);
            }
            FrameKind::Ampdu { ref mpdus } => {
                let mpdus = mpdus.clone();
                self.end_uplink_data(tx, frame.from, mpdus, frame.mcs, now);
            }
            FrameKind::BlockAck { start_seq, bitmap } if self.is_ap(frame.from) => {
                self.end_ap_blockack(tx, frame.from, frame.to, start_seq, bitmap, now);
            }
            FrameKind::BlockAck { start_seq, bitmap } => {
                self.end_client_blockack(tx, frame.from, frame.to, start_seq, bitmap, now);
            }
            FrameKind::Beacon => self.end_beacon(tx, frame.from, now),
            FrameKind::Mgmt { step } => self.end_mgmt(tx, frame.from, frame.to, step, now),
            FrameKind::Data { packet, .. } if !self.is_ap(frame.from) => {
                if packet.id == KEEPALIVE_PKT_ID {
                    self.end_keepalive(tx, frame.from, now);
                }
            }
            FrameKind::Data { .. } | FrameKind::Ack => {}
        }
    }

    /// A keepalive finished: every decoding AP reports CSI (WGTT). The
    /// baseline's client-side roamer works from beacons instead.
    fn end_keepalive(&mut self, tx: TxId, client: NodeId, now: SimTime) {
        if !matches!(self.system, SystemState::Wgtt { .. }) {
            return;
        }
        // One batched synthesis pass over every overhearing link; the
        // per-AP queries below are memo hits.
        self.prime_esnr_maps(client, now);
        let n_aps = self.cfg.ap_x.len() as u32;
        let off = self.cfg.ap_id_offset;
        for ai in 0..n_aps {
            let ap = NodeId(off + ai);
            // Horizon gate first: an AP past the decode horizon must be
            // skipped *without consuming a random draw*, or a shard (which
            // never iterates it) would fall out of step with this world.
            if !self.within_decode_horizon(ap, client, now)
                || !self.medium.same_channel(client, ap)
                || !self.rx_survives(tx, client, ap, now)
            {
                continue;
            }
            if !self.roll_mpdu(ap, client, now, Mcs::Mcs0, 40) {
                continue;
            }
            let esnr = self.measured_esnr(ap, client, now);
            let csi = {
                let SystemState::Wgtt { aps, .. } = &self.system else {
                    unreachable!()
                };
                aps[ai as usize].csi_report(client, esnr, now)
            };
            self.backhaul_send(csi.to, csi.msg, now);
        }
    }

    /// A downlink A-MPDU finished: roll per-MPDU delivery at the client,
    /// deliver new packets, and arm the Block ACK response/timeout pair.
    fn end_downlink_data(
        &mut self,
        tx: TxId,
        ap: NodeId,
        client: NodeId,
        mpdus: Vec<Mpdu>,
        mcs: Mcs,
        now: SimTime,
    ) {
        self.report
            .bitrate_series
            .entry(client)
            .or_insert_with(wgtt_sim::metrics::Distribution::sketch)
            .record(mcs.rate_mbps());
        let survives =
            self.medium.same_channel(ap, client) && self.rx_survives(tx, ap, client, now);
        // BAR semantics: when the whole aggregate lies in the stale half
        // of the receive window (the sender's sequence space jumped after
        // an overload drop or fan-out absence), re-anchor the window at
        // the aggregate's first sequence number.
        {
            let ci = self.client_index(client);
            let key = self.ba_rx_key(ap);
            let win = self.clients[ci].ba_rx.entry(key).or_default();
            if !mpdus.is_empty() && mpdus.iter().all(|m| win.is_behind(m.seq)) {
                win.reanchor(mpdus[0].seq);
            }
        }
        let mut decoded_any = false;
        for m in &mpdus {
            let ok = survives && self.roll_mpdu(ap, client, now, mcs, m.packet.len);
            if !ok {
                continue;
            }
            decoded_any = true;
            let ci = self.client_index(client);
            let key = self.ba_rx_key(ap);
            if self.clients[ci]
                .ba_rx
                .entry(key)
                .or_default()
                .on_mpdu(m.seq)
            {
                self.deliver_to_client(client, m.packet, now);
            }
        }
        if self.trace_at(now) {
            eprintln!(
                "{now} dl_data_end ap={ap} n={} mcs={mcs:?} decoded_any={decoded_any}",
                mpdus.len()
            );
        }
        if decoded_any {
            self.note_delivery(client, now);
            self.report.dbg_ba.0 += 1;
            let ci = self.client_index(client);
            let key = self.ba_rx_key(ap);
            let (start_seq, bitmap) = self.clients[ci]
                .ba_rx
                .entry(key)
                .or_default()
                .block_ack();
            let jitter =
                SimDuration::from_micros(SIFS_US + self.clients[ci].rng.below(16));
            self.queue.schedule(
                now + jitter,
                Ev::BaResponse {
                    from: client,
                    to: ap,
                    client,
                    start_seq,
                    bitmap,
                },
            );
        }
        let ev = self
            .queue
            .schedule(now + BA_WAIT, Ev::BaTimeout { ap, client });
        let aui = self.ap_index(ap);
        self.ap_ba_timeout_ev[aui] = Some(ev);
    }

    /// An uplink A-MPDU finished: every AP rolls reception independently;
    /// decoders tunnel packets + CSI (WGTT) or deliver to the server
    /// (baseline, associated AP only) and respond with Block ACKs.
    fn end_uplink_data(
        &mut self,
        tx: TxId,
        client: NodeId,
        mpdus: Vec<Mpdu>,
        mcs: Mcs,
        now: SimTime,
    ) {
        let ci = self.client_index(client);
        self.clients[ci].up_mpdus_sent += mpdus.len() as u64;
        self.clients[ci].up_mpdu_retx +=
            mpdus.iter().filter(|m| m.retries > 0).count() as u64;
        let n_aps = self.cfg.ap_x.len() as u32;
        let wgtt = matches!(self.system, SystemState::Wgtt { .. });
        let assoc_ap = match &self.system {
            SystemState::Baseline { ds, .. } => ds.binding(client),
            _ => None,
        };
        let off = self.cfg.ap_id_offset;
        // Batched synthesis for the whole overhearing fan-out up front.
        self.prime_esnr_maps(client, now);
        for ai in 0..n_aps {
            let ap = NodeId(off + ai);
            let aui = ai as usize;
            // Horizon gate first — see `end_keepalive`.
            if !self.within_decode_horizon(ap, client, now)
                || !self.medium.same_channel(client, ap)
                || !self.rx_survives(tx, client, ap, now)
            {
                continue;
            }
            let mut decoded: Vec<Mpdu> = Vec::new();
            for m in &mpdus {
                if self.roll_mpdu(ap, client, now, mcs, m.packet.len) {
                    decoded.push(*m);
                }
            }
            if self.trace_at(now) {
                eprintln!("{now} ul_end ap={ap} decoded={}/{}", decoded.len(), mpdus.len());
            }
            if decoded.is_empty() {
                continue;
            }
            // Per-AP receive-window dedup + bitmap construction (with the
            // same BAR re-anchor rule as the downlink direction).
            let mut new_refs: Vec<PacketRef> = Vec::new();
            {
                let win = self.ap_up_rx.entry((ap, client)).or_default();
                if !decoded.is_empty() && decoded.iter().all(|m| win.is_behind(m.seq)) {
                    win.reanchor(decoded[0].seq);
                }
                for m in &decoded {
                    if win.on_mpdu(m.seq) {
                        new_refs.push(m.packet);
                    }
                }
            }
            if wgtt {
                let esnr = self.measured_esnr(ap, client, now);
                let csi = {
                    let SystemState::Wgtt { aps, .. } = &self.system else {
                        unreachable!()
                    };
                    aps[aui].csi_report(client, esnr, now)
                };
                self.backhaul_send(csi.to, csi.msg, now);
                for r in new_refs {
                    let Some(packet) = self.packet_by_ref(r) else {
                        self.report.missing_packet_refs += 1;
                        continue;
                    };
                    self.backhaul_send(
                        BackhaulDest::Controller,
                        BackhaulMsg::UplinkData { ap, packet },
                        now,
                    );
                }
            } else if assoc_ap == Some(ap) {
                for r in new_refs {
                    let Some(packet) = self.packet_by_ref(r) else {
                        self.report.missing_packet_refs += 1;
                        continue;
                    };
                    self.on_wan_uplink(packet, now);
                }
            }
            // Block ACK response — under WGTT *every* decoding AP is
            // associated and replies (Table 3); under the baseline only
            // the associated AP does. The addressee answers HT-immediate
            // after SIFS; the others respond with the µs-scale backoff
            // the paper measured on the TP-Link hardware (§5.3.2), which
            // together with carrier sense makes collisions rare.
            let is_addressee = self.serving_of(client) == Some(ap);
            if wgtt || assoc_ap == Some(ap) {
                let (start_seq, bitmap) = self.ap_up_rx[&(ap, client)].block_ack();
                let jitter_us = if is_addressee {
                    SIFS_US + self.ap_rng[aui].below(3)
                } else {
                    SIFS_US + 12 + self.ap_rng[aui].below(60)
                };
                self.queue.schedule(
                    now + SimDuration::from_micros(jitter_us),
                    Ev::BaResponse {
                        from: ap,
                        to: client,
                        client,
                        start_seq,
                        bitmap,
                    },
                );
            }
        }
        let ev = self
            .queue
            .schedule(now + BA_WAIT, Ev::ClientBaTimeout { client });
        self.clients[ci].ba_timeout_ev = Some(ev);
    }

    /// A client's Block ACK (for downlink data) finished: the addressee
    /// applies it; under WGTT every other decoding AP both reports CSI
    /// and forwards the Block ACK to the serving AP (§3.2.1).
    fn end_client_blockack(
        &mut self,
        tx: TxId,
        client: NodeId,
        target: NodeId,
        start_seq: u16,
        bitmap: u64,
        now: SimTime,
    ) {
        self.report.dbg_ba.1 += 1;
        let n_aps = self.cfg.ap_x.len() as u32;
        let wgtt = matches!(self.system, SystemState::Wgtt { .. });
        let off = self.cfg.ap_id_offset;
        // Batched synthesis for the whole overhearing fan-out up front.
        self.prime_esnr_maps(client, now);
        for ai in 0..n_aps {
            let ap = NodeId(off + ai);
            let aui = ai as usize;
            // Horizon gate first — see `end_keepalive`.
            if !self.within_decode_horizon(ap, client, now)
                || !self.medium.same_channel(client, ap)
                || !self.rx_survives(tx, client, ap, now)
            {
                continue;
            }
            if !self.roll_control(ap, client, now) {
                continue;
            }
            if wgtt {
                // Every uplink frame is a CSI opportunity.
                let esnr = self.measured_esnr(ap, client, now);
                let csi = {
                    let SystemState::Wgtt { aps, .. } = &self.system else {
                        unreachable!()
                    };
                    aps[aui].csi_report(client, esnr, now)
                };
                self.backhaul_send(csi.to, csi.msg, now);
            }
            if ap == target {
                self.report.dbg_ba.2 += 1;
                let cleared = match &mut self.system {
                    SystemState::Wgtt { aps, .. } => {
                        aps[aui].on_block_ack(client, start_seq, bitmap);
                        !aps[aui].has_in_flight(client)
                    }
                    SystemState::Baseline { aps, .. } => {
                        aps[aui].on_block_ack(client, start_seq, bitmap);
                        // A byte-identical BA for a retransmission window
                        // is a no-op here too: resolve only when the
                        // window actually cleared.
                        !aps[aui].has_in_flight(client)
                    }
                };
                if cleared && self.ap_current_peer[aui] == Some(client) {
                    self.resolve_ap_exchange(ap, now);
                }
            } else if wgtt && self.wgtt_cfg.enable_ba_forwarding {
                let actions = {
                    let SystemState::Wgtt { aps, .. } = &mut self.system else {
                        unreachable!()
                    };
                    aps[aui].on_overheard_block_ack(client, start_seq, bitmap)
                };
                for act in actions {
                    self.backhaul_send(act.to, act.msg, now);
                }
            }
        }
    }

    /// An AP's Block ACK (for uplink data) finished at the client.
    fn end_ap_blockack(
        &mut self,
        tx: TxId,
        ap: NodeId,
        client: NodeId,
        start_seq: u16,
        bitmap: u64,
        now: SimTime,
    ) {
        if !self.medium.same_channel(ap, client) {
            return;
        }
        if !self.rx_survives(tx, ap, client, now) {
            self.report.ba_collisions.incr();
            return;
        }
        if !self.roll_control(ap, client, now) {
            return;
        }
        if self.trace_at(now) {
            eprintln!("{now} ap_ba_at_client from={ap}");
        }
        let ci = self.client_index(client);
        let c = &mut self.clients[ci];
        if c.up_ba.has_in_flight() && c.up_ba.covers_in_flight(start_seq) {
            let r = c.up_ba.on_block_ack(start_seq, bitmap);
            if r.duplicate {
                return; // stale copy; keep waiting for a live BA/timeout
            }
            if let Some((mcs, attempted)) = c.up_in_flight_meta.take() {
                c.up_rate.on_feedback(mcs, attempted, r.acked.len());
            }
            c.up_retries.extend(r.to_retry.iter().copied());
            self.resolve_client_exchange(client, now);
        }
    }

    fn on_ba_response(
        &mut self,
        from: NodeId,
        to: NodeId,
        _client: NodeId,
        start_seq: u16,
        bitmap: u64,
        now: SimTime,
    ) {
        // Responses younger than the preamble-detect lag are invisible:
        // that is how two APs' acknowledgements can collide (§5.3.2).
        if self.medium.sensed_busy(from, now, SENSE_LAG)
            || self.medium.own_tx_until(from, now) > now
        {
            return; // suppressed by carrier sense (or own radio busy)
        }
        let frame = Frame {
            from,
            to,
            kind: FrameKind::BlockAck { start_seq, bitmap },
            mcs: Mcs::Mcs0,
        };
        if self.is_ap(from) {
            self.report.ba_responses.incr();
        }
        let dur = frame_airtime(&frame);
        let tx = self.medium.begin_tx(from, now, dur);
        self.queue.schedule(now + dur, Ev::TxEnd { tx, frame });
    }

    // -------------------------------------------------- baseline frames

    fn on_beacon(&mut self, ap: NodeId, retry: bool, now: SimTime) {
        if !retry {
            self.queue
                .schedule(now + BEACON_INTERVAL, Ev::Beacon { ap, retry: false });
        }
        if self.medium.is_busy_for(ap, now) {
            if !retry {
                let ai = self.ap_index(ap);
                let at = self.medium.busy_until_for(ap, now)
                    + SimDuration::from_micros(
                        wgtt_mac::airtime::DIFS_US + self.ap_rng[ai].below(64),
                    );
                self.queue.schedule(at, Ev::Beacon { ap, retry: true });
            }
            return;
        }
        let frame = Frame {
            from: ap,
            to: ap, // broadcast; the field is unused for beacons
            kind: FrameKind::Beacon,
            mcs: Mcs::Mcs0,
        };
        let dur = frame_airtime(&frame);
        let tx = self.medium.begin_tx(ap, now, dur);
        self.queue.schedule(now + dur, Ev::TxEnd { tx, frame });
    }

    fn end_beacon(&mut self, tx: TxId, ap: NodeId, now: SimTime) {
        let client_ids: Vec<NodeId> = self.clients.iter().map(|c| c.id).collect();
        for client in client_ids {
            // Horizon gate first — see `end_keepalive`.
            if !self.within_decode_horizon(ap, client, now)
                || !self.medium.same_channel(ap, client)
                || !self.rx_survives(tx, ap, client, now)
            {
                continue;
            }
            if !self.roll_control(ap, client, now) {
                continue;
            }
            let pos = self.client_pos(client, now);
            // Power only — no CSI materialization for a beacon RSSI.
            let rssi = self.link(ap, client).rssi_dbm_at(now, pos);
            let ci = self.client_index(client);
            if let Some(r) = self.clients[ci].roamer.as_mut() {
                r.on_beacon(ap, rssi, now);
            }
        }
    }

    fn on_roam_poll(&mut self, client: NodeId, now: SimTime) {
        self.queue
            .schedule(now + ROAM_POLL, Ev::RoamPoll { client });
        let ci = self.client_index(client);
        let Some(roamer) = self.clients[ci].roamer.as_mut() else {
            return;
        };
        match roamer.evaluate(now) {
            RoamerAction::SendMgmt { ap, step } => {
                // Contend for the channel like any other frame — under a
                // saturated medium the reassociation must still win slots.
                let at = self
                    .medium
                    .access_time(client, now, 0, &mut self.clients[ci].rng);
                self.queue.schedule(
                    at,
                    Ev::MgmtTx {
                        from: client,
                        to: ap,
                        step,
                        attempt: 0,
                    },
                );
            }
            RoamerAction::None => {}
        }
    }

    /// A granted management transmission instant: send if the channel is
    /// clear, otherwise re-contend (bounded; the roamer's own retry timer
    /// provides the outer loop).
    fn on_mgmt_tx(&mut self, from: NodeId, to: NodeId, step: MgmtStep, attempt: u8, now: SimTime) {
        if self.medium.is_busy_for(from, now) || self.medium.own_tx_until(from, now) > now {
            if attempt < 8 {
                let ci = self.client_index(from);
                let at = self
                    .medium
                    .access_time(from, now, attempt + 1, &mut self.clients[ci].rng);
                self.queue.schedule(
                    at,
                    Ev::MgmtTx {
                        from,
                        to,
                        step,
                        attempt: attempt + 1,
                    },
                );
            }
            return;
        }
        let frame = Frame {
            from,
            to,
            kind: FrameKind::Mgmt { step },
            mcs: Mcs::Mcs0,
        };
        let dur = frame_airtime(&frame);
        let tx = self.medium.begin_tx(from, now, dur);
        self.queue.schedule(now + dur, Ev::TxEnd { tx, frame });
    }

    fn end_mgmt(&mut self, tx: TxId, from: NodeId, to: NodeId, step: MgmtStep, now: SimTime) {
        match step {
            MgmtStep::AssocReq => {
                // `from` = client, `to` = AP.
                if !self.rx_survives(tx, from, to, now) {
                    return;
                }
                if !self.roll_control(to, from, now) {
                    return;
                }
                self.queue.schedule(
                    now + SimDuration::from_micros(SIFS_US),
                    Ev::MgmtResponse {
                        from: to,
                        to: from,
                        step: MgmtStep::AssocResp,
                    },
                );
            }
            MgmtStep::AssocResp => {
                // `from` = AP, `to` = client.
                if !self.rx_survives(tx, from, to, now) {
                    return;
                }
                if !self.roll_control(from, to, now) {
                    return;
                }
                let ci = self.client_index(to);
                let switched = self.clients[ci]
                    .roamer
                    .as_mut()
                    .is_some_and(|r| r.on_assoc_response(from, now));
                if switched {
                    let off = self.cfg.ap_id_offset;
                    if let SystemState::Baseline { ds, aps } = &mut self.system {
                        let old = ds.binding(to);
                        ds.on_reassoc(to, from);
                        if let Some(old_ap) = old {
                            if old_ap != from {
                                aps[(old_ap.0 - off) as usize].flush_client(to);
                            }
                        }
                    }
                    self.kick_ap(from, now);
                }
            }
            _ => {}
        }
    }

    fn on_mgmt_response(&mut self, from: NodeId, to: NodeId, step: MgmtStep, now: SimTime) {
        if self.medium.sensed_busy(from, now, SENSE_LAG) {
            return;
        }
        let frame = Frame {
            from,
            to,
            kind: FrameKind::Mgmt { step },
            mcs: Mcs::Mcs0,
        };
        let dur = frame_airtime(&frame);
        let tx = self.medium.begin_tx(from, now, dur);
        self.queue.schedule(now + dur, Ev::TxEnd { tx, frame });
    }
}
