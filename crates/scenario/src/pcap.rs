//! libpcap capture of the WGTT backhaul.
//!
//! The controller↔AP data path rides UDP/IP tunnels on the Ethernet
//! backhaul (paper §3.1.3 downlink, §3.2.2 uplink). When capture is
//! enabled (see [`World::enable_backhaul_capture`]) every tunnelled data
//! packet is serialized with the real `wgtt-net` wire formats —
//! Ethernet II / IPv4 / UDP / WGTT shim / inner IPv4 — and recorded as a
//! classic pcap (linktype 1) that Wireshark opens directly, in the
//! spirit of smoltcp's `--pcap` example option.
//!
//! [`World::enable_backhaul_capture`]: crate::world::World::enable_backhaul_capture

use wgtt_net::wire::{
    EthernetHeader, IpProtocol, Ipv4Addr, Ipv4Header, MacAddr, TunnelHeader, TunnelKind, UdpHeader,
    ETHERNET_HEADER_LEN, ETHERTYPE_IPV4, IPV4_HEADER_LEN, TUNNEL_HEADER_LEN, UDP_HEADER_LEN,
};
use wgtt_net::Packet;
use wgtt_sim::time::SimTime;

/// UDP port the tunnel runs on (both directions).
pub const TUNNEL_PORT: u16 = 9000;

/// Classic pcap writer (microsecond timestamps, linktype Ethernet).
#[derive(Debug, Default)]
pub struct PcapWriter {
    records: Vec<(SimTime, Vec<u8>)>,
}

impl PcapWriter {
    /// An empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one frame.
    pub fn record(&mut self, at: SimTime, frame: Vec<u8>) {
        self.records.push((at, frame));
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize the whole capture as a pcap byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.records.len() * 64);
        // Global header.
        out.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes()); // magic
        out.extend_from_slice(&2u16.to_le_bytes()); // major
        out.extend_from_slice(&4u16.to_le_bytes()); // minor
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&1u32.to_le_bytes()); // linktype: Ethernet
        for (at, frame) in &self.records {
            let ns = at.as_nanos();
            out.extend_from_slice(&((ns / 1_000_000_000) as u32).to_le_bytes());
            out.extend_from_slice(&(((ns % 1_000_000_000) / 1_000) as u32).to_le_bytes());
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(frame);
        }
        out
    }

    /// Write the capture to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }
}

/// Deterministic backhaul MAC address for a node id (controller = 0xFE).
pub fn backhaul_mac(id: u8) -> MacAddr {
    MacAddr([0x02, 0x57, 0x47, 0x54, 0x54, id])
}

/// Deterministic backhaul IPv4 address for a node id.
pub fn backhaul_ip(id: u8) -> Ipv4Addr {
    Ipv4Addr::new(192, 168, 0, id)
}

/// Serialize one tunnelled data packet exactly as it crosses the
/// Ethernet backhaul: outer Ethernet/IPv4/UDP, the WGTT shim, and the
/// inner packet's IPv4 header (payload bytes zeroed — the simulation
/// tracks lengths, not contents).
pub fn encode_tunnel_frame(
    src_node: u8,
    dst_node: u8,
    ident: u16,
    kind: TunnelKind,
    client_id: u32,
    index: u16,
    inner: &Packet,
) -> Vec<u8> {
    let inner_len = inner.len.max(IPV4_HEADER_LEN as u16) as usize;
    let total =
        ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + TUNNEL_HEADER_LEN + inner_len;
    let mut buf = vec![0u8; total];
    EthernetHeader {
        dst: backhaul_mac(dst_node),
        src: backhaul_mac(src_node),
        ethertype: ETHERTYPE_IPV4,
    }
    .emit(&mut buf)
    .expect("buffer sized for headers");
    Ipv4Header {
        src: backhaul_ip(src_node),
        dst: backhaul_ip(dst_node),
        ident,
        ttl: 64,
        protocol: IpProtocol::Udp,
        payload_len: (UDP_HEADER_LEN + TUNNEL_HEADER_LEN + inner_len) as u16,
    }
    .emit(&mut buf[ETHERNET_HEADER_LEN..])
    .expect("buffer sized for headers");
    UdpHeader {
        src_port: TUNNEL_PORT,
        dst_port: TUNNEL_PORT,
        payload_len: (TUNNEL_HEADER_LEN + inner_len) as u16,
    }
    .emit(&mut buf[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN..])
    .expect("buffer sized for headers");
    TunnelHeader {
        client_id,
        index,
        kind,
    }
    .emit(&mut buf[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN..])
    .expect("buffer sized for headers");
    inner
        .ip_header()
        .emit(
            &mut buf[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + TUNNEL_HEADER_LEN..],
        )
        .expect("buffer sized for headers");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgtt_net::packet::{FlowId, PacketFactory};

    fn sample_packet() -> Packet {
        let mut f = PacketFactory::new();
        f.udp(
            FlowId(0),
            Ipv4Addr::new(8, 8, 8, 8),
            Ipv4Addr::new(172, 16, 0, 100),
            0,
            1500,
            SimTime::ZERO,
        )
    }

    #[test]
    fn pcap_stream_has_valid_headers() {
        let mut w = PcapWriter::new();
        let frame =
            encode_tunnel_frame(0xFE, 1, 7, TunnelKind::Downlink, 100, 42, &sample_packet());
        w.record(SimTime::from_millis(1_234), frame.clone());
        let bytes = w.to_bytes();
        assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), 1);
        // Record header: ts 1.234000, lengths match.
        assert_eq!(u32::from_le_bytes(bytes[24..28].try_into().unwrap()), 1);
        assert_eq!(
            u32::from_le_bytes(bytes[28..32].try_into().unwrap()),
            234_000
        );
        let incl = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        assert_eq!(incl, frame.len());
        assert_eq!(bytes.len(), 24 + 16 + frame.len());
    }

    #[test]
    fn tunnel_frame_parses_back() {
        let inner = sample_packet();
        let frame = encode_tunnel_frame(3, 0xFE, 9, TunnelKind::Uplink, 100, 0, &inner);
        let eth = EthernetHeader::parse(&frame).unwrap();
        assert_eq!(eth.ethertype, ETHERTYPE_IPV4);
        assert_eq!(eth.src, backhaul_mac(3));
        let ip = Ipv4Header::parse(&frame[ETHERNET_HEADER_LEN..]).unwrap();
        assert_eq!(ip.src, backhaul_ip(3));
        assert_eq!(ip.protocol, IpProtocol::Udp);
        let udp = UdpHeader::parse(&frame[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN..]).unwrap();
        assert_eq!(udp.dst_port, TUNNEL_PORT);
        let shim =
            TunnelHeader::parse(&frame[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN..])
                .unwrap();
        assert_eq!(shim.kind, TunnelKind::Uplink);
        assert_eq!(shim.client_id, 100);
        let iip = Ipv4Header::parse(
            &frame[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + TUNNEL_HEADER_LEN..],
        )
        .unwrap();
        assert_eq!(iip.dedup_key(), inner.dedup_key());
    }

    #[test]
    fn empty_capture_is_just_the_global_header() {
        let w = PcapWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.to_bytes().len(), 24);
    }
}
