//! Fleet-scale corridor scenario generator.
//!
//! The paper's testbed is one 8-AP block of one road with one or two
//! cars. A transit *network* is hundreds of vehicles over kilometres of
//! corridor — the deployment the abstract actually argues for. This
//! module generates such corridors parametrically: AP spacing and
//! count, antenna azimuth, per-AP cell radius (which drives the channel
//! reuse plan), a speed profile, directional and stop-and-go traffic
//! fractions, and a per-vehicle application mix drawn from
//! [`wgtt_apps::mix::TrafficMix`]. Everything derives from one seed
//! through named [`RngStream`]s, so a fleet run is exactly as
//! reproducible as the single-car figures.
//!
//! The companion [`FleetReport`] reduces a run to the aggregates a
//! network operator would watch: per-vehicle p50/p99 PHY bitrate
//! (bounded-memory sketch, never the raw sample stream), switch rate
//! per vehicle-minute, and the downlink outage-duration CDF — including
//! vehicles that never received a frame, which report one full-run
//! outage instead of a NaN.

use crate::testbed::{ClientPlan, Direction, StopAndGo, TestbedConfig, MPH};
use crate::world::{FlowSpec, SystemKind, World};
use wgtt_apps::mix::{AppKind, TrafficMix};
use wgtt_mac::frame::NodeId;
use wgtt_radio::Position;
use wgtt_sim::rng::RngStream;
use wgtt_sim::time::SimDuration;

/// Offered load of the telemetry-only uplink (position beacons, fare
/// payments): 64 kbit/s.
const TELEMETRY_MBPS: f64 = 0.064;
/// Streaming-video downlink rate — matches the 720p
/// [`wgtt_apps::video::VideoPlayer`] consumption rate (2.5 Mbit/s).
const VIDEO_MBPS: f64 = 2.5;
/// Web-fetch transfer size — the paper's 2.1 MB eBay homepage
/// ([`wgtt_apps::web::PageLoad`]).
const WEB_BYTES: u64 = 2_100_000;
/// Speed samples are clamped into this band (mph): no parked fleet
/// vehicles, nothing faster than arterial traffic.
const SPEED_CLAMP_MPH: (f64, f64) = (3.0, 60.0);

/// Parameters of a generated corridor fleet scenario.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of vehicles on the corridor.
    pub n_vehicles: usize,
    /// Number of roadside APs.
    pub n_aps: usize,
    /// Distance between adjacent APs, metres.
    pub ap_spacing_m: f64,
    /// Nominal usable cell radius per AP, metres. Drives the channel
    /// reuse plan: when a cell reaches past the next AP, adjacent APs
    /// alternate channels to trade overhearing for interference (§7).
    pub cell_radius_m: f64,
    /// Boresight azimuth of every AP antenna, radians in world
    /// coordinates (`None` = the testbed default, facing the road).
    pub antenna_azimuth_rad: Option<f64>,
    /// Mean vehicle speed, mph.
    pub speed_mean_mph: f64,
    /// Vehicle speed standard deviation, mph.
    pub speed_std_mph: f64,
    /// Fraction of vehicles travelling the opposite direction in the far
    /// lane.
    pub opposing_fraction: f64,
    /// Fraction of vehicles that make one stop-and-go pause at a random
    /// waypoint along the corridor.
    pub stop_and_go_fraction: f64,
    /// Application mix dealt across the fleet.
    pub mix: TrafficMix,
    /// Run duration.
    pub duration: SimDuration,
    /// Number of spatially separated districts the corridor splits into.
    /// Districts are contiguous AP/vehicle blocks with a [`Self::
    /// district_gap_m`] of empty road between them; with the gap wider
    /// than every radio interaction range, districts cannot exchange a
    /// single frame, carrier-sense deferral, or capture event — which is
    /// what lets `scenario::shard` run them on parallel threads with a
    /// bit-identical merged report. `1` (the default) is the classic
    /// unbroken corridor.
    pub districts: usize,
    /// Empty road between adjacent districts' AP blocks, metres. The
    /// default 160 m clears the 40 m carrier-sense/interference range
    /// and the 120 m decode horizon even after the 5 m shuttle tails on
    /// each side.
    pub district_gap_m: f64,
}

impl FleetConfig {
    /// An urban-corridor default at the paper's picocell density: 8 m
    /// AP spacing on one channel (the narrow-beam roadside dishes leave
    /// dead zones between APs spaced much wider than the road offset),
    /// 20 ± 6 mph traffic with 30 % opposing and 20 % stop-and-go, the
    /// default transit application mix, 30 s of simulated time.
    pub fn corridor(n_vehicles: usize, n_aps: usize) -> Self {
        FleetConfig {
            n_vehicles,
            n_aps,
            ap_spacing_m: 8.0,
            cell_radius_m: 8.0,
            antenna_azimuth_rad: None,
            speed_mean_mph: 20.0,
            speed_std_mph: 6.0,
            opposing_fraction: 0.3,
            stop_and_go_fraction: 0.2,
            mix: TrafficMix::transit_default(),
            duration: SimDuration::from_secs(30),
            districts: 1,
            district_gap_m: 160.0,
        }
    }

    /// APs per district: contiguous, near-equal blocks (the first
    /// `n_aps % districts` districts take one extra).
    pub fn district_ap_counts(&self) -> Vec<usize> {
        split_counts(self.n_aps, self.districts)
    }

    /// Vehicles per district, blocked the same way as the APs.
    pub fn district_vehicle_counts(&self) -> Vec<usize> {
        split_counts(self.n_vehicles, self.districts)
    }

    /// World x-coordinate of each district's first AP.
    fn district_x0s(&self) -> Vec<f64> {
        let counts = self.district_ap_counts();
        let mut x0 = 0.0;
        let mut out = Vec::with_capacity(counts.len());
        for &c in &counts {
            out.push(x0);
            x0 += self.ap_spacing_m * (c.saturating_sub(1)) as f64 + self.district_gap_m;
        }
        out
    }

    /// Corridor length covered by the AP array, metres: the district
    /// spans plus the inter-district gaps (identical to the old
    /// `spacing × (n_aps − 1)` for the default single district).
    pub fn road_len(&self) -> f64 {
        let counts = self.district_ap_counts();
        let spans: f64 = counts
            .iter()
            .map(|&c| self.ap_spacing_m * (c.saturating_sub(1)) as f64)
            .sum();
        spans + self.district_gap_m * (counts.len().saturating_sub(1)) as f64
    }

    /// Channel reuse factor implied by the cell geometry: 1 (single
    /// channel) while cells stay within one AP spacing, otherwise enough
    /// channels that co-channel cells don't overlap, capped at 3 (the
    /// non-overlapping 2.4 GHz set).
    pub fn channel_reuse(&self) -> usize {
        if self.cell_radius_m <= self.ap_spacing_m {
            1
        } else {
            ((self.cell_radius_m / self.ap_spacing_m).ceil() as usize).clamp(2, 3)
        }
    }

    /// Generate the deterministic scenario for `seed`: the testbed
    /// (AP array + per-vehicle drive plans), the application kind dealt
    /// to each vehicle, and the flow attachments realizing those apps.
    ///
    /// Each vehicle consumes its own derived RNG stream, so one
    /// vehicle's conditional draws (stop-and-go waypoint, say) never
    /// shift another vehicle's deal.
    pub fn generate(&self, seed: u64) -> (TestbedConfig, Vec<AppKind>, Vec<(usize, FlowSpec)>) {
        let mut ap_x = Vec::with_capacity(self.n_aps);
        let mut ap_channels = Vec::new();
        let mut clients = Vec::with_capacity(self.n_vehicles);
        let mut kinds = Vec::with_capacity(self.n_vehicles);
        let mut flows = Vec::new();
        for p in self.district_plan(seed) {
            let first_vehicle = p.first_vehicle;
            ap_x.extend_from_slice(&p.cfg.ap_x);
            ap_channels.extend_from_slice(&p.cfg.ap_channels);
            clients.extend_from_slice(&p.cfg.clients);
            kinds.extend(p.kinds);
            flows.extend(p.flows.into_iter().map(|(lv, f)| (first_vehicle + lv, f)));
        }
        let cfg = TestbedConfig {
            ap_x,
            ap_channels,
            clients,
            ap_boresight_rad: self.antenna_azimuth_rad,
            ap_id_offset: 0,
            // `None` resolves to the same fleet-wide base the district
            // plans bake in, so client ids agree between the monolithic
            // world and the shards.
            client_id_first: None,
            client_index_offset: 0,
        };
        (cfg, kinds, flows)
    }

    /// Generate the per-district decomposition of the scenario: one
    /// self-contained [`TestbedConfig`] per district, carrying globally
    /// consistent AP/client ids and drawing from the same per-vehicle
    /// RNG streams as the monolithic [`FleetConfig::generate`] — which
    /// is in fact implemented as the concatenation of these plans, so
    /// the two can never drift apart.
    pub fn district_plan(&self, seed: u64) -> Vec<DistrictPlan> {
        assert!(self.n_aps >= 2, "a corridor needs at least two APs");
        assert!(self.n_vehicles >= 1, "a fleet needs at least one vehicle");
        assert!(self.districts >= 1, "at least one district");
        assert!(
            self.n_aps >= 2 * self.districts,
            "each district needs at least two APs"
        );
        assert!(
            self.n_vehicles >= self.districts,
            "each district needs at least one vehicle"
        );
        assert!(
            self.districts == 1 || self.district_gap_m >= 150.0,
            "the district gap must clear every radio interaction range \
             (decode horizon + shuttle tails)"
        );
        let reuse = self.channel_reuse();
        let ap_counts = self.district_ap_counts();
        let veh_counts = self.district_vehicle_counts();
        let x0s = self.district_x0s();
        // Fleet-wide client-id base: what a monolithic world would pick.
        let client_base = 100u32.max(self.n_aps as u32);
        let root = RngStream::root(seed).derive("fleet");

        let mut plans = Vec::with_capacity(self.districts);
        let mut first_ap = 0usize;
        let mut first_vehicle = 0usize;
        for d in 0..self.districts {
            let n_ap = ap_counts[d];
            let n_veh = veh_counts[d];
            let x0 = x0s[d];
            let d_len = self.ap_spacing_m * (n_ap.saturating_sub(1)) as f64;
            let ap_x: Vec<f64> = (0..n_ap)
                .map(|j| x0 + j as f64 * self.ap_spacing_m)
                .collect();
            let ap_channels: Vec<u8> = if reuse == 1 {
                Vec::new()
            } else {
                // Channels follow the *global* AP index so the reuse
                // pattern is unbroken across district boundaries.
                (0..n_ap).map(|j| ((first_ap + j) % reuse) as u8).collect()
            };
            let mut clients = Vec::with_capacity(n_veh);
            let mut kinds = Vec::with_capacity(n_veh);
            let mut flows = Vec::new();
            for lv in 0..n_veh {
                let vi = first_vehicle + lv;
                let mut rng = root.derive_indexed("vehicle", vi as u64).rng();
                let speed_mph = rng
                    .normal_with(self.speed_mean_mph, self.speed_std_mph)
                    .clamp(SPEED_CLAMP_MPH.0, SPEED_CLAMP_MPH.1);
                let opposing = rng.chance(self.opposing_fraction);
                // Vehicles start spread along their district (a fleet in
                // steady state), not clumped at the entrance. The draws
                // are district-relative, so a single-district corridor
                // reproduces the historical sequence bit for bit.
                let start_x = x0 + rng.uniform_range(-5.0, d_len + 5.0);
                let stop = if rng.chance(self.stop_and_go_fraction) {
                    Some(StopAndGo {
                        at_x: x0 + rng.uniform_range(0.0, d_len.max(1.0)),
                        pause_s: rng.uniform_range(5.0, 20.0),
                    })
                } else {
                    None
                };
                let (direction, y) = if opposing {
                    (Direction::West, -3.5)
                } else {
                    (Direction::East, 0.0)
                };
                clients.push(ClientPlan {
                    start: Position::new(start_x, y),
                    speed_mps: speed_mph * MPH,
                    direction,
                    stop,
                    // Transit vehicles work their district, turning
                    // around just past each end, instead of driving off
                    // to infinity (which would leave their last AP
                    // burning airtime at an unreachable client). The
                    // 5 m tails stay inside the end APs' beams — and
                    // inside the district: vehicles never cross the gap,
                    // which is what makes the decomposition exact.
                    shuttle: Some((x0 - 5.0, x0 + d_len + 5.0)),
                });

                let kind = self.mix.sample(&mut rng);
                kinds.push(kind);
                match kind {
                    AppKind::Video => flows.push((
                        lv,
                        FlowSpec::DownlinkUdp {
                            rate_mbps: VIDEO_MBPS,
                        },
                    )),
                    AppKind::Web => {
                        flows.push((lv, FlowSpec::DownlinkTcpBytes { bytes: WEB_BYTES }));
                    }
                    AppKind::Conference => {
                        flows.push((lv, FlowSpec::DownlinkConference { adaptive: true }));
                        flows.push((lv, FlowSpec::UplinkConference { adaptive: true }));
                    }
                    AppKind::Telemetry => {
                        flows.push((
                            lv,
                            FlowSpec::UplinkUdp {
                                rate_mbps: TELEMETRY_MBPS,
                            },
                        ));
                    }
                }
            }
            plans.push(DistrictPlan {
                cfg: TestbedConfig {
                    ap_x,
                    ap_channels,
                    clients,
                    ap_boresight_rad: self.antenna_azimuth_rad,
                    ap_id_offset: first_ap as u32,
                    client_id_first: Some(client_base + first_vehicle as u32),
                    client_index_offset: first_vehicle,
                },
                kinds,
                flows,
                first_vehicle,
                first_ap,
            });
            first_ap += n_ap;
            first_vehicle += n_veh;
        }
        plans
    }

    /// Build one `World` per district (lean sampling on), each covering
    /// its own slice of the corridor with globally consistent ids and
    /// RNG streams. These are what `scenario::shard` advances in
    /// parallel.
    pub fn district_worlds(&self, system: SystemKind, seed: u64) -> Vec<(World, Vec<AppKind>)> {
        self.district_plan(seed)
            .into_iter()
            .map(|p| {
                let mut w = World::new_multi(p.cfg, system, p.flows, seed);
                w.sample_lean = true;
                (w, p.kinds)
            })
            .collect()
    }

    /// Build the world for this scenario (lean sampling on: the
    /// per-(client, AP) ESNR trace loop is dead weight at fleet scale).
    pub fn build_world(&self, system: SystemKind, seed: u64) -> (World, Vec<AppKind>) {
        let (cfg, kinds, flows) = self.generate(seed);
        let mut world = World::new_multi(cfg, system, flows, seed);
        world.sample_lean = true;
        (world, kinds)
    }

    /// Run the scenario end to end and reduce it to fleet aggregates.
    pub fn run(&self, system: SystemKind, seed: u64) -> FleetReport {
        let (mut world, kinds) = self.build_world(system, seed);
        world.run(self.duration);
        FleetReport::from_world(&world, &kinds, self)
    }
}

/// One spatial district of a corridor scenario: a self-contained
/// [`TestbedConfig`] (global AP/client ids via its offset fields) plus
/// the app deal and flows of the vehicles that live in it. Flow entries
/// are keyed by *district-local* vehicle index, ready for
/// [`World::new_multi`].
#[derive(Debug, Clone)]
pub struct DistrictPlan {
    /// The district's testbed.
    pub cfg: TestbedConfig,
    /// App kind per district vehicle, in local vehicle order.
    pub kinds: Vec<AppKind>,
    /// Flows keyed by district-local vehicle index.
    pub flows: Vec<(usize, FlowSpec)>,
    /// Global index of the district's first vehicle.
    pub first_vehicle: usize,
    /// Global index of the district's first AP.
    pub first_ap: usize,
}

/// `n` split into `d` contiguous near-equal blocks (earlier blocks take
/// the remainder).
fn split_counts(n: usize, d: usize) -> Vec<usize> {
    (0..d).map(|i| n / d + usize::from(i < n % d)).collect()
}

/// Per-vehicle reduction of a fleet run.
#[derive(Debug, Clone)]
pub struct VehicleStats {
    /// The vehicle's client node id.
    pub client: NodeId,
    /// The application dealt to this vehicle.
    pub kind: AppKind,
    /// Whether the vehicle's app has a downlink component (outage is
    /// only defined for these).
    pub has_downlink: bool,
    /// Median delivered PHY bitrate (Mbit/s), `None` if no frame was
    /// ever transmitted to this vehicle.
    pub bitrate_p50_mbps: Option<f64>,
    /// 99th-percentile delivered PHY bitrate (Mbit/s).
    pub bitrate_p99_mbps: Option<f64>,
    /// Total downlink outage time, seconds.
    pub outage_s: f64,
    /// Number of distinct outages.
    pub outages: u64,
    /// A downlink vehicle that never decoded a single frame: the whole
    /// run is one outage.
    pub full_outage: bool,
}

/// Fleet-level aggregates of one corridor run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Vehicles simulated.
    pub vehicles: usize,
    /// APs deployed.
    pub aps: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// One entry per vehicle, in vehicle-index order.
    pub per_vehicle: Vec<VehicleStats>,
    /// Completed AP switches across the fleet.
    pub switches: u64,
    /// Switches per vehicle-minute — the operator's roaming-churn rate.
    pub switch_rate_per_vehicle_minute: f64,
    /// High-water mark of concurrent clients on any single AP — the
    /// congestion figure the load-aware policy exists to reduce.
    pub max_ap_load: u64,
    /// Downlink outage durations pooled across all downlink vehicles as
    /// `(seconds, cumulative_fraction)` pairs; full-outage vehicles
    /// contribute one full-run sample each.
    pub outage_cdf: Vec<(f64, f64)>,
    /// Downlink vehicles that never decoded a frame.
    pub full_outage_vehicles: usize,
    /// Events handled by the run (macro-bench numerator).
    pub events_handled: u64,
    /// Frames that completed on the air (macro-bench numerator).
    pub frames_on_air: u64,
    /// Robustness counters (normally zero; see `RunReport`).
    pub backhaul_misaddressed: u64,
    /// Delivered-frame refs that no longer resolved (normally zero).
    pub missing_packet_refs: u64,
}

impl FleetReport {
    /// Reduce a finished world into fleet aggregates.
    pub fn from_world(world: &World, kinds: &[AppKind], cfg: &FleetConfig) -> Self {
        let report = &world.report;
        let ids = world.client_ids();
        assert_eq!(ids.len(), kinds.len(), "one app kind per vehicle");

        let mut per_vehicle = Vec::with_capacity(ids.len());
        let mut outage_samples: Vec<f64> = Vec::new();
        let mut full_outage_vehicles = 0;
        let dur_s = cfg.duration.as_secs_f64();
        for (&client, &kind) in ids.iter().zip(kinds) {
            let has_downlink = kind != AppKind::Telemetry;
            let bitrate = report.bitrate_series.get(&client);
            let bitrate_p50_mbps = bitrate.and_then(|d| d.quantile(0.5));
            let bitrate_p99_mbps = bitrate.and_then(|d| d.quantile(0.99));
            let mut outage_s = 0.0;
            let mut outages = 0u64;
            let mut full_outage = false;
            if has_downlink {
                if report.last_delivery.contains_key(&client) {
                    if let Some(d) = report.outage_durations.get(&client) {
                        // The exact backend's CDF is one point per
                        // sample, so it doubles as a raw-sample view.
                        for (v, _) in d.cdf() {
                            outage_s += v;
                            outages += 1;
                            outage_samples.push(v);
                        }
                    }
                } else {
                    // Never decoded a frame: one full-run outage, not
                    // a NaN from dividing by zero deliveries.
                    full_outage = true;
                    full_outage_vehicles += 1;
                    outage_s = dur_s;
                    outages = 1;
                    outage_samples.push(dur_s);
                }
            }
            per_vehicle.push(VehicleStats {
                client,
                kind,
                has_downlink,
                bitrate_p50_mbps,
                bitrate_p99_mbps,
                outage_s,
                outages,
                full_outage,
            });
        }

        outage_samples.sort_by(|a, b| a.partial_cmp(b).expect("outage is never NaN"));
        let n = outage_samples.len() as f64;
        let outage_cdf: Vec<(f64, f64)> = outage_samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect();

        let vehicle_minutes = ids.len() as f64 * dur_s / 60.0;
        let switch_rate_per_vehicle_minute = if vehicle_minutes > 0.0 {
            report.switches as f64 / vehicle_minutes
        } else {
            0.0
        };

        FleetReport {
            vehicles: ids.len(),
            aps: cfg.n_aps,
            duration: cfg.duration,
            per_vehicle,
            switches: report.switches,
            switch_rate_per_vehicle_minute,
            max_ap_load: report.max_ap_load,
            outage_cdf,
            full_outage_vehicles,
            events_handled: report.events_handled,
            frames_on_air: report.frames_on_air,
            backhaul_misaddressed: report.backhaul_misaddressed,
            missing_packet_refs: report.missing_packet_refs,
        }
    }

    /// Merge per-district reports into the fleet-wide report, exactly as
    /// [`FleetReport::from_world`] would have reduced the monolithic
    /// world: `per_vehicle` concatenates in district order (= global
    /// vehicle order, since vehicle blocks are contiguous), counters
    /// sum, the switch rate is recomputed from the summed counts with
    /// the identical expression, and the pooled outage CDF is re-sorted
    /// from the districts' samples (stable, so ties keep global vehicle
    /// order, matching the monolithic sort).
    pub fn merge(parts: Vec<FleetReport>, cfg: &FleetConfig) -> FleetReport {
        assert!(!parts.is_empty(), "merge needs at least one district");
        let dur_s = cfg.duration.as_secs_f64();
        let mut per_vehicle = Vec::new();
        let mut outage_samples: Vec<f64> = Vec::new();
        let mut switches = 0u64;
        let mut max_ap_load = 0u64;
        let mut full_outage_vehicles = 0usize;
        let mut events_handled = 0u64;
        let mut frames_on_air = 0u64;
        let mut backhaul_misaddressed = 0u64;
        let mut missing_packet_refs = 0u64;
        for p in parts {
            // The exact per-district CDF is one point per sample, so it
            // doubles as the raw pooled-sample view.
            outage_samples.extend(p.outage_cdf.iter().map(|&(v, _)| v));
            per_vehicle.extend(p.per_vehicle);
            switches += p.switches;
            // Max-of-parts is exact: clients never cross the district
            // gap, so no AP's concurrent load mixes districts.
            max_ap_load = max_ap_load.max(p.max_ap_load);
            full_outage_vehicles += p.full_outage_vehicles;
            events_handled += p.events_handled;
            frames_on_air += p.frames_on_air;
            backhaul_misaddressed += p.backhaul_misaddressed;
            missing_packet_refs += p.missing_packet_refs;
        }
        outage_samples.sort_by(|a, b| a.partial_cmp(b).expect("outage is never NaN"));
        let n = outage_samples.len() as f64;
        let outage_cdf: Vec<(f64, f64)> = outage_samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect();
        let vehicles = per_vehicle.len();
        let vehicle_minutes = vehicles as f64 * dur_s / 60.0;
        let switch_rate_per_vehicle_minute = if vehicle_minutes > 0.0 {
            switches as f64 / vehicle_minutes
        } else {
            0.0
        };
        FleetReport {
            vehicles,
            aps: cfg.n_aps,
            duration: cfg.duration,
            per_vehicle,
            switches,
            switch_rate_per_vehicle_minute,
            max_ap_load,
            outage_cdf,
            full_outage_vehicles,
            events_handled,
            frames_on_air,
            backhaul_misaddressed,
            missing_packet_refs,
        }
    }

    /// A bit-stable rendering of every aggregate *except*
    /// `events_handled` (floats via `to_bits`, so equality means bit
    /// identity). The sharded engine and the monolithic oracle handle
    /// legitimately different event *counts* — each shard runs its own
    /// mobility/sample/poll chains — while every physical observable
    /// must match exactly; worker-count invariance additionally holds
    /// for the full report including `events_handled`.
    pub fn equivalence_digest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "vehicles={} aps={} dur={:016x} switches={} maxload={} rate={:016x} cdf_n={} \
             full_outage={} frames={} misaddr={} missing={}",
            self.vehicles,
            self.aps,
            self.duration.as_secs_f64().to_bits(),
            self.switches,
            self.max_ap_load,
            self.switch_rate_per_vehicle_minute.to_bits(),
            self.outage_cdf.len(),
            self.full_outage_vehicles,
            self.frames_on_air,
            self.backhaul_misaddressed,
            self.missing_packet_refs,
        );
        for v in &self.per_vehicle {
            let _ = write!(
                s,
                "|{} {:?} {} {:?} {:?} {:016x} {} {}",
                v.client.0,
                v.kind,
                v.has_downlink,
                v.bitrate_p50_mbps.map(f64::to_bits),
                v.bitrate_p99_mbps.map(f64::to_bits),
                v.outage_s.to_bits(),
                v.outages,
                v.full_outage,
            );
        }
        for &(v, f) in &self.outage_cdf {
            let _ = write!(s, "|{:016x},{:016x}", v.to_bits(), f.to_bits());
        }
        s
    }

    /// Quantile of the pooled per-vehicle statistic `f` across vehicles
    /// that have one (nearest-rank).
    fn quantile_of(&self, q: f64, f: impl Fn(&VehicleStats) -> Option<f64>) -> Option<f64> {
        let mut vals: Vec<f64> = self.per_vehicle.iter().filter_map(f).collect();
        if vals.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("stat is never NaN"));
        let idx = ((q * (vals.len() - 1) as f64).round() as usize).min(vals.len() - 1);
        Some(vals[idx])
    }

    /// Fleet quantile of the per-vehicle *median* bitrates.
    pub fn fleet_bitrate_p50(&self, q: f64) -> Option<f64> {
        self.quantile_of(q, |v| v.bitrate_p50_mbps)
    }

    /// Fleet quantile of the per-vehicle *p99* bitrates.
    pub fn fleet_bitrate_p99(&self, q: f64) -> Option<f64> {
        self.quantile_of(q, |v| v.bitrate_p99_mbps)
    }

    /// Quantile of the pooled outage-duration samples.
    pub fn outage_quantile(&self, q: f64) -> Option<f64> {
        if self.outage_cdf.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let idx = ((q * (self.outage_cdf.len() - 1) as f64).round() as usize)
            .min(self.outage_cdf.len() - 1);
        Some(self.outage_cdf[idx].0)
    }

    /// Total downlink outage time (s) contributed by outages lasting at
    /// least `threshold_s` — e.g. `outage_time_over(0.2)` is the
    /// user-visible stall budget the predictive policy targets (gaps
    /// short enough to hide inside a player buffer are excluded).
    pub fn outage_time_over(&self, threshold_s: f64) -> f64 {
        self.outage_cdf
            .iter()
            .map(|&(v, _)| v)
            .filter(|&v| v >= threshold_s)
            .sum()
    }

    /// Fraction of downlink vehicles whose whole run was one outage.
    pub fn full_outage_fraction(&self) -> f64 {
        let dl = self.per_vehicle.iter().filter(|v| v.has_downlink).count();
        if dl == 0 {
            0.0
        } else {
            self.full_outage_vehicles as f64 / dl as f64
        }
    }

    /// A compact single-line digest (the CLI and smoke test print it).
    pub fn digest(&self) -> String {
        format!(
            "vehicles={} aps={} dur={:.0}s events={} frames={} switches={} \
             switch_rate={:.2}/veh-min max_ap_load={} bitrate_p50[p50]={} outage_p99={} \
             full_outage={}",
            self.vehicles,
            self.aps,
            self.duration.as_secs_f64(),
            self.events_handled,
            self.frames_on_air,
            self.switches,
            self.switch_rate_per_vehicle_minute,
            self.max_ap_load,
            fmt_opt(self.fleet_bitrate_p50(0.5)),
            fmt_opt(self.outage_quantile(0.99)),
            self.full_outage_vehicles,
        )
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "none".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgtt::WgttConfig;

    #[test]
    fn generate_is_deterministic_and_sized() {
        let cfg = FleetConfig::corridor(24, 12);
        let (t1, k1, f1) = cfg.generate(9);
        let (t2, k2, f2) = cfg.generate(9);
        assert_eq!(t1.ap_x, t2.ap_x);
        assert_eq!(k1, k2);
        assert_eq!(f1.len(), f2.len());
        assert_eq!(t1.clients.len(), 24);
        assert_eq!(t1.ap_x.len(), 12);
        // Paper-density default: cells fit the spacing, one channel.
        assert_eq!(cfg.channel_reuse(), 1);
        assert!(t1.ap_channels.is_empty());
        // A different seed deals a different fleet.
        let (_, k3, _) = cfg.generate(10);
        assert_ne!(k1, k3);
    }

    #[test]
    fn wide_cells_alternate_channels() {
        let mut cfg = FleetConfig::corridor(4, 12);
        cfg.cell_radius_m = 2.0 * cfg.ap_spacing_m;
        assert_eq!(cfg.channel_reuse(), 2);
        let (t, _, _) = cfg.generate(1);
        assert_eq!(t.ap_channels, vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn every_vehicle_gets_at_least_one_flow() {
        let cfg = FleetConfig::corridor(40, 8);
        let (_, kinds, flows) = cfg.generate(3);
        for (vi, kind) in kinds.iter().enumerate() {
            assert!(
                flows.iter().any(|&(i, _)| i == vi),
                "vehicle {vi} ({kind:?}) has no flow"
            );
        }
    }

    #[test]
    fn single_channel_when_cells_fit_spacing() {
        let mut cfg = FleetConfig::corridor(4, 8);
        cfg.cell_radius_m = 15.0;
        cfg.ap_spacing_m = 20.0;
        assert_eq!(cfg.channel_reuse(), 1);
        let (t, _, _) = cfg.generate(1);
        assert!(t.ap_channels.is_empty());
    }

    #[test]
    fn small_fleet_runs_and_aggregates() {
        let mut cfg = FleetConfig::corridor(4, 6);
        cfg.duration = SimDuration::from_secs(5);
        let report = cfg.run(SystemKind::Wgtt(WgttConfig::default()), 11);
        assert_eq!(report.vehicles, 4);
        assert_eq!(report.per_vehicle.len(), 4);
        assert!(report.events_handled > 0);
        assert!(report.frames_on_air > 0);
        assert_eq!(report.backhaul_misaddressed, 0);
        assert_eq!(report.missing_packet_refs, 0);
        // CDF, if present, is monotone and ends at 1.
        if let Some(last) = report.outage_cdf.last() {
            assert!((last.1 - 1.0).abs() < 1e-12);
            for w in report.outage_cdf.windows(2) {
                assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
            }
        }
        // The digest renders without panicking.
        assert!(report.digest().contains("vehicles=4"));
    }
}
