//! The Fig. 9 deployment: eight APs along a side road, and client drive
//! plans.
//!
//! The paper deploys eight APs in third-floor windows overlooking a road
//! with a 25 mph limit; adjacent coverage overlaps by 6–10 m (Fig. 10),
//! with a *denser* group (AP2–AP4) and a *sparser* group (AP5–AP7) that
//! §5.3.4 compares. Clients drive along the road in either direction at
//! 5–35 mph, singly or in the §5.2.2 multi-client patterns (following at
//! 3 m spacing, parallel, opposing).

use wgtt_radio::Position;
use wgtt_sim::time::{SimDuration, SimTime};

/// Metres per second per mile-per-hour.
pub const MPH: f64 = 0.44704;

/// Distance from the AP building line to the near lane, metres.
pub const ROAD_OFFSET_M: f64 = 12.0;

/// Travel direction along the road.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Increasing x.
    East,
    /// Decreasing x.
    West,
}

/// An optional mid-drive stop (traffic light / congestion): the car
/// halts when it reaches `at_x` and resumes after `pause_s` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopAndGo {
    /// Along-road coordinate where the car stops, metres.
    pub at_x: f64,
    /// Pause duration, seconds.
    pub pause_s: f64,
}

/// One client's drive plan: straight-line constant-speed motion, with an
/// optional stop-and-go pause and an optional shuttle route.
#[derive(Debug, Clone, Copy)]
pub struct ClientPlan {
    /// Position at t = 0, metres.
    pub start: Position,
    /// Speed, m/s (0 allowed: parked client).
    pub speed_mps: f64,
    /// Travel direction.
    pub direction: Direction,
    /// Optional mid-drive stop.
    pub stop: Option<StopAndGo>,
    /// Shuttle route bounds `(west_x, east_x)`: instead of driving off
    /// to infinity, the vehicle turns around at each bound (a transit
    /// vehicle working a corridor). `None` = the paper's one-way
    /// drive-by. The stop-and-go pause, if any, applies on the first
    /// approach only.
    pub shuttle: Option<(f64, f64)>,
}

impl ClientPlan {
    /// A drive past the whole array at `speed_mph`, starting west of the
    /// first AP in the near lane.
    pub fn drive_by(speed_mph: f64) -> Self {
        ClientPlan {
            start: Position::new(-15.0, 0.0),
            speed_mps: speed_mph * MPH,
            direction: Direction::East,
            stop: None,
            shuttle: None,
        }
    }

    /// A drive-by with a stop-and-go pause at `at_x` for `pause_s`
    /// seconds (the traffic-light scenario).
    pub fn stop_and_go(speed_mph: f64, at_x: f64, pause_s: f64) -> Self {
        ClientPlan {
            stop: Some(StopAndGo { at_x, pause_s }),
            ..Self::drive_by(speed_mph)
        }
    }

    /// Same drive delayed by `gap_m` metres behind another car (the
    /// "following at 3 m spacing" pattern).
    pub fn following(speed_mph: f64, gap_m: f64) -> Self {
        ClientPlan {
            start: Position::new(-15.0 - gap_m, 0.0),
            speed_mps: speed_mph * MPH,
            direction: Direction::East,
            stop: None,
            shuttle: None,
        }
    }

    /// Parallel car in the far lane, side by side.
    pub fn parallel(speed_mph: f64) -> Self {
        ClientPlan {
            start: Position::new(-15.0, -3.5),
            speed_mps: speed_mph * MPH,
            direction: Direction::East,
            stop: None,
            shuttle: None,
        }
    }

    /// Opposing-direction car in the far lane, starting east of the
    /// array.
    pub fn opposing(speed_mph: f64, road_len: f64) -> Self {
        ClientPlan {
            start: Position::new(road_len + 15.0, -3.5),
            speed_mps: speed_mph * MPH,
            direction: Direction::West,
            stop: None,
            shuttle: None,
        }
    }

    /// Position at simulation time `t`.
    pub fn position_at(&self, t: SimTime) -> Position {
        let mut travel = t.as_secs_f64() * self.speed_mps;
        if let Some(stop) = self.stop {
            // Distance from start to the stop point along the travel
            // direction (only a stop ahead of the start applies).
            let to_stop = match self.direction {
                Direction::East => stop.at_x - self.start.x,
                Direction::West => self.start.x - stop.at_x,
            };
            if to_stop > 0.0 && self.speed_mps > 0.0 && travel > to_stop {
                let pause_travel = stop.pause_s * self.speed_mps;
                travel = if travel <= to_stop + pause_travel {
                    to_stop // parked at the stop line
                } else {
                    travel - pause_travel
                };
            }
        }
        let x = match self.direction {
            Direction::East => self.start.x + travel,
            Direction::West => self.start.x - travel,
        };
        Position::new(self.fold_shuttle(x), self.start.y)
    }

    /// Reflect an unbounded along-road coordinate into the shuttle
    /// bounds (triangle wave: the vehicle turns around at each end).
    fn fold_shuttle(&self, x: f64) -> f64 {
        let Some((lo, hi)) = self.shuttle else {
            return x;
        };
        let span = hi - lo;
        if span <= 0.0 {
            return lo;
        }
        let period = 2.0 * span;
        let mut u = (x - lo) % period;
        if u < 0.0 {
            u += period;
        }
        lo + if u <= span { u } else { period - u }
    }

    /// Time to traverse `dist` metres (`None` for a parked client).
    pub fn time_to_cover(&self, dist: f64) -> Option<SimDuration> {
        if self.speed_mps <= 0.0 {
            None
        } else {
            Some(SimDuration::from_secs_f64(dist / self.speed_mps))
        }
    }
}

/// Deployment + drive configuration for one run.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// AP x-coordinates along the road (all at `y = ROAD_OFFSET_M`).
    pub ap_x: Vec<f64>,
    /// Per-AP wireless channel (empty = everything on channel 0, the
    /// paper's single-channel deployment; the §7 multi-channel extension
    /// alternates channels between adjacent APs).
    pub ap_channels: Vec<u8>,
    /// Client drive plans.
    pub clients: Vec<ClientPlan>,
    /// Boresight direction of every AP's directional antenna, radians
    /// in world coordinates (`None` = the paper testbed's default of
    /// facing the road, −π/2). Fleet corridors steer this to model
    /// down-the-road mounting.
    pub ap_boresight_rad: Option<f64>,
    /// NodeId of the first AP in this config. A monolithic world always
    /// uses 0; a spatial shard of a larger corridor keeps its APs'
    /// *global* ids by offsetting into the fleet-wide id space, so a
    /// sharded run and the monolithic oracle agree on every id-keyed
    /// observable.
    pub ap_id_offset: u32,
    /// Explicit NodeId for the first client (`None` = the historical
    /// `100.max(n_aps)` rule). Shards of a larger corridor pass the
    /// fleet-wide base plus their first global vehicle index.
    pub client_id_first: Option<u32>,
    /// Global index of the first client in this config (0 for monolithic
    /// worlds). Per-vehicle RNG streams, IP addresses and keepalive
    /// staggering key off the global index, never the local one.
    pub client_index_offset: usize,
}

impl TestbedConfig {
    /// The paper's eight-AP roadside array: a dense group (AP1–AP4,
    /// 6 m spacing) and a sparser group (AP5–AP8, 9 m spacing). Coverage
    /// overlaps everywhere (Fig. 10 shows 6–10 m overlaps with no dead
    /// zones), with the dense/sparse contrast §5.3.4 compares.
    pub fn paper_array() -> Self {
        TestbedConfig {
            ap_x: vec![0.0, 6.0, 12.0, 18.0, 26.0, 35.0, 44.0, 53.0],
            ap_channels: Vec::new(),
            clients: Vec::new(),
            ap_boresight_rad: None,
            ap_id_offset: 0,
            client_id_first: None,
            client_index_offset: 0,
        }
    }

    /// The §7 multi-channel variant: adjacent APs alternate between two
    /// channels (interference avoidance at the cost of overhearing).
    pub fn paper_array_dual_channel() -> Self {
        let mut cfg = Self::paper_array();
        cfg.ap_channels = (0..cfg.ap_x.len()).map(|i| (i % 2) as u8).collect();
        cfg
    }

    /// The two-AP §2 motivation testbed (7.5 m apart).
    pub fn two_ap() -> Self {
        TestbedConfig {
            ap_x: vec![0.0, 7.5],
            ap_channels: Vec::new(),
            clients: Vec::new(),
            ap_boresight_rad: None,
            ap_id_offset: 0,
            client_id_first: None,
            client_index_offset: 0,
        }
    }

    /// Attach client plans.
    pub fn with_clients(mut self, clients: Vec<ClientPlan>) -> Self {
        self.clients = clients;
        self
    }

    /// AP positions on the plane.
    pub fn ap_positions(&self) -> Vec<Position> {
        self.ap_x
            .iter()
            .map(|&x| Position::new(x, ROAD_OFFSET_M))
            .collect()
    }

    /// Road length covered by the array (first to last AP).
    pub fn road_len(&self) -> f64 {
        match (self.ap_x.first(), self.ap_x.last()) {
            (Some(&a), Some(&b)) => b - a,
            _ => 0.0,
        }
    }

    /// Time for `plan` to transit from its start past the last AP plus a
    /// 15 m tail.
    pub fn transit_time(&self, plan: &ClientPlan) -> Option<SimDuration> {
        let total = self.road_len() + 30.0 + 15.0;
        plan.time_to_cover(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mph_conversion() {
        assert!((15.0 * MPH - 6.7056).abs() < 1e-9);
    }

    #[test]
    fn drive_by_moves_east() {
        let p = ClientPlan::drive_by(15.0);
        let a = p.position_at(SimTime::ZERO);
        let b = p.position_at(SimTime::from_secs(1));
        assert!((b.x - a.x - 15.0 * MPH).abs() < 1e-9);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn opposing_moves_west() {
        let p = ClientPlan::opposing(15.0, 58.0);
        let a = p.position_at(SimTime::ZERO);
        let b = p.position_at(SimTime::from_secs(1));
        assert!(b.x < a.x);
    }

    #[test]
    fn parked_client_stays() {
        let p = ClientPlan {
            start: Position::new(3.0, 0.0),
            speed_mps: 0.0,
            direction: Direction::East,
            stop: None,
            shuttle: None,
        };
        assert_eq!(p.position_at(SimTime::from_secs(100)), p.start);
        assert!(p.time_to_cover(10.0).is_none());
    }

    #[test]
    fn paper_array_shape() {
        let t = TestbedConfig::paper_array();
        assert_eq!(t.ap_x.len(), 8);
        assert_eq!(t.road_len(), 53.0);
        // Dense group spacing < sparse group spacing.
        let dense = t.ap_x[1] - t.ap_x[0];
        let sparse = t.ap_x[5] - t.ap_x[4];
        assert!(dense < sparse);
        // All APs sit on the building line.
        for p in t.ap_positions() {
            assert_eq!(p.y, ROAD_OFFSET_M);
        }
    }

    #[test]
    fn transit_time_scales_inversely_with_speed() {
        let t = TestbedConfig::paper_array();
        let slow = t.transit_time(&ClientPlan::drive_by(5.0)).unwrap();
        let fast = t.transit_time(&ClientPlan::drive_by(25.0)).unwrap();
        let ratio = slow.as_secs_f64() / fast.as_secs_f64();
        assert!((ratio - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stop_and_go_pauses_then_resumes() {
        let p = ClientPlan::stop_and_go(15.0, 10.0, 5.0);
        let v = p.speed_mps;
        let t_reach = 25.0 / v; // start.x = −15 → 25 m to the stop line
                                // Before the stop: moving.
        let before = p.position_at(SimTime::from_secs_f64(t_reach - 1.0));
        assert!(before.x < 10.0);
        // During the pause: parked at the stop line.
        let during = p.position_at(SimTime::from_secs_f64(t_reach + 2.0));
        assert!((during.x - 10.0).abs() < 1e-6, "x = {}", during.x);
        // After: resumed, offset by exactly the pause.
        let after = p.position_at(SimTime::from_secs_f64(t_reach + 5.0 + 2.0));
        assert!((after.x - (10.0 + 2.0 * v)).abs() < 1e-6, "x = {}", after.x);
    }

    #[test]
    fn dual_channel_alternates() {
        let t = TestbedConfig::paper_array_dual_channel();
        assert_eq!(t.ap_channels, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn following_keeps_gap() {
        let lead = ClientPlan::drive_by(15.0);
        let tail = ClientPlan::following(15.0, 3.0);
        for s in 0..10 {
            let t = SimTime::from_secs(s);
            let gap = lead.position_at(t).x - tail.position_at(t).x;
            assert!((gap - 3.0).abs() < 1e-9);
        }
    }
}
