//! # wgtt-scenario — end-to-end testbed scenarios
//!
//! The event-driven world that glues every substrate together into the
//! paper's Fig. 9 deployment: eight roadside APs on one 2.4 GHz channel,
//! an Ethernet backhaul to a controller (or a plain distribution system
//! for the baseline), and clients driving past at 0–35 mph carrying UDP,
//! TCP, and application workloads.
//!
//! * [`testbed`] — deployment geometry and client mobility;
//! * [`world`] — the discrete-event simulation: medium access, A-MPDU
//!   exchanges, Block ACK responses and forwarding, CSI reporting, the
//!   switching protocol in flight, TCP/UDP endpoints, and the baseline's
//!   beacon/roam machinery — all on one deterministic event queue;
//! * [`experiments`] — one driver per table/figure of the paper's
//!   evaluation, each returning printable rows (see DESIGN.md §4 for the
//!   index);
//! * [`fleet`] — the parametric fleet-scale corridor generator (hundreds
//!   of vehicles, dozens of APs) and its aggregate report;
//! * [`shard`] — the sharded parallel engine: spatial districts on a
//!   scoped-thread pool, proven shard-count-invariant against the
//!   sequential world by a differential harness;
//! * [`pcap`] — Wireshark-compatible capture of the backhaul tunnels;
//! * [`results`] — small formatting helpers for paper-style output.

pub mod experiments;
pub mod fleet;
pub mod pcap;
pub mod results;
pub mod shard;
pub mod testbed;
pub mod world;

pub use fleet::{FleetConfig, FleetReport};
pub use testbed::{ClientPlan, Direction, TestbedConfig};
pub use world::{RunReport, SystemKind, World};
