// Event dispatch, backhaul plumbing, and flow routing for `World`.
// Textually included by world.rs so the impl stays in one module.

impl World {
    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Backhaul { to, msg } => self.on_backhaul(to, msg, now),
            Ev::CtlPoll => self.on_ctl_poll(now),
            Ev::ApTxStart { ap } => self.on_ap_tx_start(ap, now),
            Ev::ClientTxStart { client } => self.on_client_tx_start(client, now),
            Ev::TxEnd { tx, frame } => self.on_tx_end(tx, frame, now),
            Ev::BaResponse {
                from,
                to,
                client,
                start_seq,
                bitmap,
            } => self.on_ba_response(from, to, client, start_seq, bitmap, now),
            Ev::MgmtResponse { from, to, step } => self.on_mgmt_response(from, to, step, now),
            Ev::BaTimeout { ap, client } => self.on_ap_ba_timeout(ap, client, now),
            Ev::ClientBaTimeout { client } => self.on_client_ba_timeout(client, now),
            Ev::Traffic { flow } => self.on_traffic(flow, now),
            Ev::TcpTimer { flow } => self.on_tcp_timer(flow, now),
            Ev::Beacon { ap, retry } => self.on_beacon(ap, retry, now),
            Ev::RoamPoll { client } => self.on_roam_poll(client, now),
            Ev::Mobility => self.on_mobility(now),
            Ev::ConfFeedback { flow } => self.on_conf_feedback(flow, now),
            Ev::SampleState => self.on_sample(now),
            Ev::Keepalive { client } => self.on_keepalive(client, now),
            Ev::MgmtTx {
                from,
                to,
                step,
                attempt,
            } => self.on_mgmt_tx(from, to, step, attempt, now),
        }
    }

    fn on_keepalive(&mut self, client: NodeId, now: SimTime) {
        self.queue
            .schedule(now + KEEPALIVE_INTERVAL, Ev::Keepalive { client });
        if self.medium.is_busy_for(client, now)
            || self.medium.own_tx_until(client, now) > now
        {
            return; // skip this beat; the next one is 50 ms away
        }
        let target = self
            .serving_of(client)
            .unwrap_or(NodeId(self.cfg.ap_id_offset));
        let frame = Frame {
            from: client,
            to: target,
            kind: FrameKind::Data {
                packet: PacketRef {
                    id: KEEPALIVE_PKT_ID,
                    len: 40,
                },
                seq: 0,
            },
            mcs: Mcs::Mcs0,
        };
        let dur = frame_airtime(&frame);
        let tx = self.medium.begin_tx(client, now, dur);
        self.queue.schedule(now + dur, Ev::TxEnd { tx, frame });
    }

    // --------------------------------------------------------- backhaul

    /// Queue `msg` for delivery over the Ethernet backhaul, applying
    /// latency, the switching protocol's processing delays, and the
    /// control-loss probability.
    fn backhaul_send(&mut self, to: BackhaulDest, msg: BackhaulMsg, now: SimTime) {
        // Control loss and processing jitter draw from the *affected
        // client's* stream (exactly the Stop/Start/SwitchAck messages,
        // which all name one): one vehicle's switch protocol must not
        // perturb another vehicle's randomness, or shards would diverge
        // from the monolithic world.
        if let Some(client) = msg.control_client() {
            let ci = self.client_index(client);
            if self.clients[ci]
                .rng
                .chance(self.wgtt_cfg.control_loss_prob)
            {
                return; // lost in the Click forwarding path; timeouts recover
            }
        }
        self.capture_backhaul(&to, &msg, now);
        let mut delay = self.wgtt_cfg.backhaul_latency;
        let proc = match &msg {
            BackhaulMsg::Stop { .. } => Some(self.wgtt_cfg.stop_processing_mean),
            BackhaulMsg::Start { .. } => Some(self.wgtt_cfg.start_processing_mean),
            _ => None,
        };
        if let (Some(mean), Some(client)) = (proc, msg.control_client()) {
            let ci = self.client_index(client);
            let jitter = self.clients[ci]
                .rng
                .normal_with(mean.as_secs_f64(), self.wgtt_cfg.processing_std.as_secs_f64())
                .max(0.0005);
            delay += SimDuration::from_secs_f64(jitter);
        }
        self.queue.schedule(now + delay, Ev::Backhaul { to, msg });
    }

    /// Run `f` against the WGTT controller with a pooled action buffer,
    /// then dispatch everything it emitted. No-op on baseline worlds.
    ///
    /// Dispatching can recurse into more controller work (a forwarded
    /// uplink TCP ack emits fresh downlink segments, which fan out
    /// here again), so each depth takes its own buffer from the pool —
    /// depth-first dispatch order is preserved exactly, and in steady
    /// state no dispatch allocates.
    fn with_controller(&mut self, now: SimTime, f: impl FnOnce(&mut Controller, &mut ActionBuf)) {
        let mut buf = self.ctl_bufs.pop().unwrap_or_default();
        debug_assert!(buf.is_empty());
        let ran = if let SystemState::Wgtt { controller, .. } = &mut self.system {
            f(controller, &mut buf);
            true
        } else {
            false
        };
        if ran {
            self.dispatch_ctl_buf(&mut buf, now);
        }
        buf.clear();
        self.ctl_bufs.push(buf);
    }

    fn dispatch_ctl_buf(&mut self, buf: &mut ActionBuf, now: SimTime) {
        for a in buf.drain() {
            match a {
                ControllerAction::Send { ap, msg } => {
                    self.backhaul_send(BackhaulDest::Ap(ap), msg, now);
                }
                ControllerAction::ToWan { packet } => self.on_wan_uplink(packet, now),
            }
        }
        // A switch may have been started: make sure its timeout is polled.
        if let SystemState::Wgtt { controller, .. } = &mut self.system {
            if let Some(t) = controller.next_timeout() {
                self.queue.schedule(t.max(now), Ev::CtlPoll);
            }
        }
    }

    fn on_backhaul(&mut self, to: BackhaulDest, msg: BackhaulMsg, now: SimTime) {
        match to {
            BackhaulDest::Controller => {
                self.with_controller(now, |c, buf| c.on_msg(msg, now, buf));
            }
            BackhaulDest::Ap(ap_id) => {
                if !self.is_ap(ap_id) {
                    // A message addressed outside the AP array (a stale
                    // id from a reconfigured corridor segment) is
                    // dropped, not a crash: timeouts re-drive the
                    // protocol.
                    self.report.backhaul_misaddressed += 1;
                    return;
                }
                let ai = self.ap_index(ap_id);
                let SystemState::Wgtt { .. } = &mut self.system else {
                    return;
                };
                let kick_client = match &msg {
                    BackhaulMsg::DownlinkData { client, .. }
                    | BackhaulMsg::Start { client, .. }
                    | BackhaulMsg::BlockAckForward { client, .. } => Some(*client),
                    _ => None,
                };
                let is_fwd = matches!(&msg, BackhaulMsg::BlockAckForward { .. });
                let is_dl = matches!(&msg, BackhaulMsg::DownlinkData { .. });
                let actions = {
                    let SystemState::Wgtt { aps, .. } = &mut self.system else {
                        unreachable!()
                    };
                    aps[ai].on_backhaul(msg, now)
                };
                if self.trace_at(now) {
                    if let Some(client) = kick_client {
                        let inf = {
                            let SystemState::Wgtt { aps, .. } = &self.system else {
                                unreachable!()
                            };
                            aps[ai].has_in_flight(client)
                        };
                        eprintln!(
                            "{now} backhaul->ap{} fwd={is_fwd} dl={is_dl} pend={} peer={:?} inflight={inf}",
                            ai, self.ap_exchange_pending[ai], self.ap_current_peer[ai]
                        );
                    }
                }
                // A forwarded Block ACK may have resolved the pending
                // exchange.
                if let Some(client) = kick_client {
                    if self.ap_exchange_pending[ai]
                        && self.ap_current_peer[ai] == Some(client)
                        && !{
                            let SystemState::Wgtt { aps, .. } = &self.system else {
                                unreachable!()
                            };
                            aps[ai].has_in_flight(client)
                        }
                    {
                        self.resolve_ap_exchange(ap_id, now);
                    }
                }
                for act in actions {
                    self.backhaul_send(act.to, act.msg, now);
                }
                self.kick_ap(ap_id, now);
            }
        }
    }

    fn on_ctl_poll(&mut self, now: SimTime) {
        self.with_controller(now, |c, buf| c.poll(now, buf));
    }

    // --------------------------------------------------------- transport

    /// Send one downlink packet into the system (controller fan-out or
    /// baseline distribution).
    fn route_downlink(&mut self, client: NodeId, packet: Packet, now: SimTime) {
        self.store_packet(packet);
        let off = self.cfg.ap_id_offset;
        match &mut self.system {
            SystemState::Wgtt { .. } => {
                self.with_controller(now, |c, buf| c.on_downlink(client, packet, now, buf));
            }
            SystemState::Baseline { ds, aps } => {
                if let Some(ap) = ds.route(client) {
                    aps[(ap.0 - off) as usize].enqueue_downlink(client, packet);
                    self.kick_ap(ap, now);
                }
            }
        }
    }

    /// Queue an uplink packet at the client's MAC.
    fn enqueue_uplink(&mut self, client: NodeId, packet: Packet, now: SimTime) {
        self.store_packet(packet);
        let ci = self.client_index(client);
        let c = &mut self.clients[ci];
        let seq = c.up_next_seq;
        c.up_next_seq = seq_next(seq);
        c.up_fresh.push_back(Mpdu {
            seq,
            packet: PacketRef {
                id: packet.id,
                len: packet.len,
            },
            retries: 0,
        });
        self.kick_client(client, now);
    }

    fn on_traffic(&mut self, flow_id: FlowId, now: SimTime) {
        let fi = flow_id.0 as usize;
        let client = self.flows[fi].client;
        let client_ip = self.clients[self.client_index(client)].ip;
        match &mut self.flows[fi].kind {
            FlowKind::DownUdp { src, .. } => {
                let pkts = src.poll(now, &mut self.factory);
                let next = src.next_due();
                for p in pkts {
                    self.route_downlink(client, p, now);
                }
                self.queue.schedule(next, Ev::Traffic { flow: flow_id });
            }
            FlowKind::UpUdp { src, .. } => {
                let pkts = src.poll(now, &mut self.factory);
                let next = src.next_due();
                for p in pkts {
                    self.enqueue_uplink(client, p, now);
                }
                self.queue.schedule(next, Ev::Traffic { flow: flow_id });
            }
            FlowKind::DownTcp { snd, .. } => {
                // One-shot bootstrap: emit the initial window.
                let segs = snd.poll_send(now);
                let deadline = snd.rto_deadline();
                self.emit_tcp_segments(flow_id, client, client_ip, segs, now);
                if let Some(d) = deadline {
                    self.queue.schedule(d, Ev::TcpTimer { flow: flow_id });
                }
            }
            FlowKind::DownConf {
                src,
                asm,
                next_seq,
                ..
            } => {
                let frames = src.poll(now);
                let mut pkts = Vec::new();
                for f in frames {
                    let chunks = f.bytes.div_ceil(CONF_CHUNK);
                    asm.pending.insert(f.id, (chunks, 0));
                    asm.window_sent += 1;
                    for _ in 0..chunks {
                        let seq = *next_seq;
                        *next_seq += 1;
                        asm.seq_to_frame.insert(seq, (f.id, chunks));
                        pkts.push(self.factory.udp(
                            flow_id,
                            SERVER_IP,
                            client_ip,
                            seq,
                            (CONF_CHUNK + 28) as u16,
                            now,
                        ));
                    }
                }
                for p in pkts {
                    self.route_downlink(client, p, now);
                }
                self.queue.schedule(
                    now + SimDuration::from_secs_f64(1.0 / 30.0),
                    Ev::Traffic { flow: flow_id },
                );
            }
            FlowKind::UpConf {
                src,
                asm,
                next_seq,
                ..
            } => {
                let frames = src.poll(now);
                let mut pkts = Vec::new();
                for f in frames {
                    let chunks = f.bytes.div_ceil(CONF_CHUNK);
                    asm.pending.insert(f.id, (chunks, 0));
                    asm.window_sent += 1;
                    for _ in 0..chunks {
                        let seq = *next_seq;
                        *next_seq += 1;
                        asm.seq_to_frame.insert(seq, (f.id, chunks));
                        pkts.push(self.factory.udp(
                            flow_id,
                            client_ip,
                            SERVER_IP,
                            seq,
                            (CONF_CHUNK + 28) as u16,
                            now,
                        ));
                    }
                }
                for p in pkts {
                    self.enqueue_uplink(client, p, now);
                }
                self.queue.schedule(
                    now + SimDuration::from_secs_f64(1.0 / 30.0),
                    Ev::Traffic { flow: flow_id },
                );
            }
        }
    }

    fn emit_tcp_segments(
        &mut self,
        flow: FlowId,
        client: NodeId,
        client_ip: Ipv4Addr,
        segs: Vec<wgtt_net::tcp::Segment>,
        now: SimTime,
    ) {
        for s in segs {
            let p = self.factory.tcp(
                flow,
                SERVER_IP,
                client_ip,
                s.seq as u32,
                s.len as u32,
                0,
                false,
                now,
            );
            self.route_downlink(client, p, now);
        }
    }

    fn on_tcp_timer(&mut self, flow_id: FlowId, now: SimTime) {
        let fi = flow_id.0 as usize;
        let client = self.flows[fi].client;
        let client_ip = self.clients[self.client_index(client)].ip;
        let FlowKind::DownTcp { snd, .. } = &mut self.flows[fi].kind else {
            return;
        };
        let Some(d) = snd.rto_deadline() else { return };
        if d > now {
            // Stale timer; a fresher one is (or will be) scheduled.
            self.queue.schedule(d, Ev::TcpTimer { flow: flow_id });
            return;
        }
        snd.on_rto(now);
        let segs = snd.poll_send(now);
        let next = snd.rto_deadline();
        self.emit_tcp_segments(flow_id, client, client_ip, segs, now);
        if let Some(d) = next {
            self.queue.schedule(d.max(now), Ev::TcpTimer { flow: flow_id });
        }
    }

    /// A de-duplicated uplink packet reached the WAN side (server).
    fn on_wan_uplink(&mut self, packet: Packet, now: SimTime) {
        let fi = packet.flow.0 as usize;
        if fi >= self.flows.len() {
            return;
        }
        let client = self.flows[fi].client;
        let client_ip = self.clients[self.client_index(client)].ip;
        match &mut self.flows[fi].kind {
            FlowKind::UpUdp { sink, .. } => sink.on_packet(&packet, now),
            FlowKind::DownTcp { snd, .. } => {
                if let Transport::Tcp {
                    ack_no, is_ack: true, ..
                } = packet.transport
                {
                    snd.on_ack(u64::from(ack_no), now);
                    let segs = snd.poll_send(now);
                    let deadline = snd.rto_deadline();
                    self.emit_tcp_segments(packet.flow, client, client_ip, segs, now);
                    if let Some(d) = deadline {
                        self.queue
                            .schedule(d.max(now), Ev::TcpTimer { flow: packet.flow });
                    }
                }
            }
            FlowKind::UpConf { asm, sink, .. } => {
                if let Transport::Udp { seq } = packet.transport {
                    if let Some(&(frame, _chunks)) = asm.seq_to_frame.get(&seq) {
                        if let Some(e) = asm.pending.get_mut(&frame) {
                            e.1 += 1;
                            if e.1 >= e.0 {
                                asm.pending.remove(&frame);
                                asm.window_done += 1;
                                sink.on_frame_complete(now);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// A downlink packet was decoded (and MAC-deduplicated) at the client.
    fn deliver_to_client(&mut self, client: NodeId, pref: PacketRef, now: SimTime) {
        let Some(packet) = self.packet_by_ref(pref) else {
            self.report.missing_packet_refs += 1;
            return;
        };
        let fi = packet.flow.0 as usize;
        if fi >= self.flows.len() {
            return;
        }
        let client_ip = self.clients[self.client_index(client)].ip;
        let mut ack_to_send: Option<Packet> = None;
        match &mut self.flows[fi].kind {
            FlowKind::DownUdp { sink, .. } => sink.on_packet(&packet, now),
            FlowKind::DownTcp {
                rcv,
                meter,
                delivered_trace,
                limit,
                ..
            } => {
                if let Transport::Tcp { seq, payload, .. } = packet.transport {
                    let before = rcv.delivered;
                    let ack_no = rcv.on_segment(u64::from(seq), u64::from(payload));
                    let newly = rcv.delivered - before;
                    if newly > 0 {
                        meter.record(now, newly);
                        delivered_trace.push((now, newly));
                        if let Some(lim) = limit {
                            if rcv.delivered >= *lim {
                                self.report
                                    .tcp_completion
                                    .entry(packet.flow)
                                    .or_insert(now);
                            }
                        }
                    }
                    ack_to_send = Some(self.factory.tcp(
                        packet.flow,
                        client_ip,
                        SERVER_IP,
                        0,
                        0,
                        ack_no as u32,
                        true,
                        now,
                    ));
                }
            }
            FlowKind::DownConf { asm, sink, .. } => {
                if let Transport::Udp { seq } = packet.transport {
                    if let Some(&(frame, _)) = asm.seq_to_frame.get(&seq) {
                        if let Some(e) = asm.pending.get_mut(&frame) {
                            e.1 += 1;
                            if e.1 >= e.0 {
                                asm.pending.remove(&frame);
                                asm.window_done += 1;
                                sink.on_frame_complete(now);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        if let Some(ack) = ack_to_send {
            self.enqueue_uplink(client, ack, now);
        }
    }

    fn on_conf_feedback(&mut self, flow_id: FlowId, now: SimTime) {
        let fi = flow_id.0 as usize;
        match &mut self.flows[fi].kind {
            FlowKind::DownConf { src, asm, .. } | FlowKind::UpConf { src, asm, .. } => {
                let sent = asm.window_sent;
                let done = asm.window_done;
                if sent > 0 {
                    let loss = 1.0 - (done.min(sent) as f64 / sent as f64);
                    src.on_loss_feedback(loss);
                }
                asm.window_sent = 0;
                asm.window_done = 0;
            }
            _ => return,
        }
        self.queue
            .schedule(now + CONF_FEEDBACK, Ev::ConfFeedback { flow: flow_id });
    }

    // -------------------------------------------------------- monitoring

    fn serving_of(&self, client: NodeId) -> Option<NodeId> {
        match &self.system {
            SystemState::Wgtt { controller, .. } => controller.serving(client),
            SystemState::Baseline { .. } => self.clients[self.client_index(client)]
                .roamer
                .as_ref()
                .and_then(|r| r.associated()),
        }
    }

    fn on_mobility(&mut self, now: SimTime) {
        let updates: Vec<(NodeId, wgtt_radio::Position)> = self
            .clients
            .iter()
            .map(|c| (c.id, c.plan.position_at(now)))
            .collect();
        for (id, pos) in updates {
            self.medium.set_position(id, pos);
        }
        self.queue.schedule(now + MOBILITY_TICK, Ev::Mobility);
    }

    fn on_sample(&mut self, now: SimTime) {
        let client_ids: Vec<NodeId> = self.clients.iter().map(|c| c.id).collect();
        let n_aps = self.cfg.ap_x.len() as u32;
        let off = self.cfg.ap_id_offset;
        for client in client_ids {
            // Serving-AP trace.
            let serving = self.serving_of(client);
            // Multi-channel deployments: the client's radio follows its
            // serving AP's channel (retune modelled at tick granularity).
            if let Some(ap) = serving {
                let ch = self.medium.channel_of(ap);
                if self.medium.channel_of(client) != ch {
                    self.medium.set_channel(client, ch);
                }
            }
            if let Some(ap) = serving {
                self.report
                    .serving_series
                    .entry(client)
                    .or_default()
                    .record(now, ap.0 as f64 + 1.0);
            }
            // ESNR traces + oracle accuracy. O(clients × APs) every
            // tick; fleet runs opt out (`sample_lean`) — their report
            // never reads these traces.
            if self.sample_lean {
                continue;
            }
            // One batched multi-AP ESNR map per client (fused SoA sweep
            // per link, scratch reused across clients and ticks), read
            // back per AP below.
            let pos = self.client_pos(client, now);
            let mut esnrs = std::mem::take(&mut self.esnr_scratch);
            wgtt_radio::batch::esnr_map(
                (0..n_aps).map(|ai| self.link(NodeId(off + ai), client)),
                now,
                pos,
                Modulation::Qam16,
                &mut esnrs,
            );
            let mut best: Option<(NodeId, f64)> = None;
            for ai in 0..n_aps {
                let ap = NodeId(off + ai);
                let e = esnrs[ai as usize];
                self.report
                    .esnr_traces
                    .entry((client, ap))
                    .or_default()
                    .record(now, e);
                if best.is_none_or(|(_, be)| e > be) {
                    best = Some((ap, e));
                }
            }
            self.esnr_scratch = esnrs;
            if let (Some(s), Some((_oracle, oracle_esnr))) = (serving, best) {
                // Only count instants where any AP is actually usable; the
                // serving AP counts as optimal when it is within 1 dB of
                // the instantaneous best (an indistinguishable tie at CSI
                // measurement precision).
                if oracle_esnr > 2.0 {
                    self.report.accuracy_total += SAMPLE_TICK.as_secs_f64();
                    let serving_esnr = self.esnr_now(s, client, now);
                    if serving_esnr >= oracle_esnr - 1.0 {
                        self.report.accuracy_hits += SAMPLE_TICK.as_secs_f64();
                    }
                }
            }
        }
        self.queue.schedule(now + SAMPLE_TICK, Ev::SampleState);
    }
}
