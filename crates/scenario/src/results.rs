//! Experiment output containers and paper-style table printing.

/// One experiment's printable result: a title, column headers, and rows.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. "fig13", "table2").
    pub id: String,
    /// Human title matching the paper artifact.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (observations the EXPERIMENTS.md log records).
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Start an output with headers.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        ExperimentOutput {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as CSV (header row + data rows; notes become `#` comments).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = format!("# {} — {}\n", self.id, self.title);
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("# note: {n}\n"));
        }
        out
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut o = ExperimentOutput::new("t1", "demo", &["speed", "tput"]);
        o.row(vec!["5".into(), "6.6".into()]);
        o.row(vec!["25".into(), "10.25".into()]);
        o.note("shape holds");
        let s = o.render();
        assert!(s.contains("t1"));
        assert!(s.contains("speed"));
        assert!(s.contains("10.25"));
        assert!(s.contains("note: shape holds"));
    }

    #[test]
    fn csv_escapes_and_renders() {
        let mut o = ExperimentOutput::new("t2", "demo", &["a", "b"]);
        o.row(vec!["1,5".into(), "x".into()]);
        let csv = o.render_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.starts_with("# t2"));
        assert!(csv.contains("a,b"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 1), "10.0");
    }
}
