//! Application case studies: Table 4 (video), Fig. 24 (conferencing),
//! Table 5 (web browsing).

use crate::experiments::common::drive;
use crate::results::{f, ExperimentOutput};
use crate::world::{FlowSpec, SystemKind};
use wgtt::WgttConfig;
use wgtt_apps::video::VideoPlayer;
use wgtt_net::packet::FlowId;
use wgtt_sim::metrics::Distribution;
use wgtt_sim::time::SimDuration;

fn wgtt() -> SystemKind {
    SystemKind::Wgtt(WgttConfig::default())
}

/// Table 4: HD-video rebuffer ratio at different speeds. The stream is a
/// progressive download (the paper plays via FTP/VLC), so we run bulk
/// TCP and replay the delivered-byte trace through the player model.
pub fn table4(seed: u64, quick: bool) -> ExperimentOutput {
    let speeds: &[f64] = if quick {
        &[5.0, 20.0]
    } else {
        &[5.0, 10.0, 15.0, 20.0]
    };
    let mut out = ExperimentOutput::new(
        "table4",
        "Video rebuffer ratio over the transit (720p, 1.5 s pre-buffer)",
        &["speed", "WGTT", "Enhanced 802.11r"],
    );
    let reps = if quick { 1 } else { 3 };
    let ratio = |sys: SystemKind, speed: f64| -> f64 {
        let mut ratios: Vec<f64> = (0..reps)
            .map(|i| {
                let run = drive(sys, speed, FlowSpec::DownlinkTcpBulk, seed + i as u64);
                let trace = run
                    .world
                    .report
                    .tcp_delivery_traces
                    .get(&FlowId(0))
                    .cloned()
                    .unwrap_or_default();
                let mut player = VideoPlayer::hd_default(run.start);
                for (t, bytes) in trace {
                    player.on_bytes(t, bytes);
                }
                player.advance(run.end);
                player.rebuffer_ratio(run.window())
            })
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ratios[ratios.len() / 2]
    };
    for &speed in speeds {
        out.row(vec![
            format!("{speed} mph"),
            f(ratio(wgtt(), speed), 2),
            f(ratio(SystemKind::Enhanced80211r, speed), 2),
        ]);
    }
    out.note("paper: WGTT plays with zero rebuffering; 802.11r rebuffers 0.54–0.69 of the time");
    out
}

/// Fig. 24: bidirectional conferencing fps CDF at 5 and 15 mph,
/// fixed-resolution (Skype-like) vs adaptive (Hangouts-like).
pub fn fig24(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig24",
        "Conferencing downlink fps per second (WGTT)",
        &["app", "speed", "p15", "p50", "p85", "mean fps"],
    );
    for (adaptive, name) in [(false, "Skype-like"), (true, "Hangouts-like")] {
        for &speed in &[5.0, 15.0] {
            let run = crate::experiments::common::drive_multi(
                wgtt(),
                speed,
                vec![
                    (0, FlowSpec::DownlinkConference { adaptive }),
                    (0, FlowSpec::UplinkConference { adaptive }),
                ],
                1,
                seed,
            );
            // Downlink fps sink (flow 0), restricted to the in-coverage
            // seconds of the drive.
            let fps_bins = run
                .world
                .report
                .conference_sinks
                .get(&FlowId(0))
                .cloned()
                .unwrap_or_default();
            let s0 = run.start.as_secs_f64() as usize;
            let s1 = (run.end.as_secs_f64() as usize).min(fps_bins.len());
            let mut d = Distribution::new();
            for &v in fps_bins.iter().take(s1).skip(s0) {
                d.record(v);
            }
            out.row(vec![
                name.into(),
                format!("{speed} mph"),
                d.quantile(0.15).map(|v| f(v, 0)).unwrap_or("-".into()),
                d.quantile(0.50).map(|v| f(v, 0)).unwrap_or("-".into()),
                d.quantile(0.85).map(|v| f(v, 0)).unwrap_or("-".into()),
                d.mean().map(|v| f(v, 1)).unwrap_or("-".into()),
            ]);
        }
    }
    out.note("paper: adaptive resolution sustains ≈56 fps at the 85th pct where fixed sits ≈20");
    out
}

/// Table 5: 2.1 MB page load time at different speeds.
///
/// Two-stage browser emulation: (1) run the drive carrying bulk TCP and
/// record the *delivered-bandwidth* trace of the wireless path; (2)
/// replay the paper's page (100 kB HTML + 40 × 50 kB objects, ≤6
/// parallel connections, sub-resources unblocked by the HTML) over that
/// trace, with concurrent objects sharing the instantaneous bandwidth.
pub fn table5(seed: u64, quick: bool) -> ExperimentOutput {
    let speeds: &[f64] = if quick {
        &[5.0, 20.0]
    } else {
        &[5.0, 10.0, 15.0, 20.0]
    };
    let mut out = ExperimentOutput::new(
        "table5",
        "2.1 MB web page load time (s); inf = not finished within the transit",
        &["speed", "WGTT", "Enhanced 802.11r"],
    );
    // The paper repeats each load 10× and averages; we take the median
    // of three seeded repetitions (TCP cold-start luck varies a lot).
    let reps = if quick { 1 } else { 3 };
    let load_time = |sys: SystemKind, speed: f64| -> Option<f64> {
        let mut times: Vec<Option<f64>> = (0..reps)
            .map(|i| {
                let run = drive(sys, speed, FlowSpec::DownlinkTcpBulk, seed + i as u64);
                let trace = run
                    .world
                    .report
                    .tcp_delivery_traces
                    .get(&FlowId(0))
                    .cloned()
                    .unwrap_or_default();
                replay_page_load(&trace, run.start, run.end)
            })
            .collect();
        times.sort_by(|a, b| {
            a.unwrap_or(f64::INFINITY)
                .partial_cmp(&b.unwrap_or(f64::INFINITY))
                .expect("finite or inf")
        });
        times[times.len() / 2]
    };
    let cell = |v: Option<f64>| v.map(|s| f(s, 2)).unwrap_or_else(|| "inf".into());
    for &speed in speeds {
        out.row(vec![
            format!("{speed} mph"),
            cell(load_time(wgtt(), speed)),
            cell(load_time(SystemKind::Enhanced80211r, speed)),
        ]);
    }
    out.note("paper: ≈4.5 s flat under WGTT; 15–18 s at ≤10 mph and never finishes at ≥15 mph under 802.11r");
    out
}

/// Replay the eBay page over a delivered-bytes trace: each 10 ms slice's
/// bandwidth is split evenly across the in-flight objects.
pub fn replay_page_load(
    trace: &[(wgtt_sim::time::SimTime, u64)],
    start: wgtt_sim::time::SimTime,
    end: wgtt_sim::time::SimTime,
) -> Option<f64> {
    use wgtt_apps::web::PageLoad;
    const SLICE: SimDuration = SimDuration::from_millis(10);
    let mut page = PageLoad::ebay_homepage(start);
    let mut remaining: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    for i in page.next_fetches() {
        remaining.insert(i, page.size_of(i));
    }
    let mut ti = 0usize; // cursor into the trace
    let mut t = start;
    while t < end {
        let slice_end = t + SLICE;
        let mut budget: u64 = 0;
        while ti < trace.len() && trace[ti].0 < slice_end {
            if trace[ti].0 >= t {
                budget += trace[ti].1;
            }
            ti += 1;
        }
        // Share the slice's bytes across in-flight objects.
        while budget > 0 && !remaining.is_empty() {
            let n = remaining.len() as u64;
            let share = (budget / n).max(1);
            let mut done: Vec<usize> = Vec::new();
            let mut spent = 0u64;
            let mut ids: Vec<usize> = remaining.keys().copied().collect();
            ids.sort_unstable();
            for i in ids {
                let r = remaining.get_mut(&i).expect("key present");
                let take = share.min(*r).min(budget - spent);
                *r -= take;
                spent += take;
                if *r == 0 {
                    done.push(i);
                }
            }
            budget -= spent;
            for i in done {
                remaining.remove(&i);
                page.on_object_done(i, slice_end);
                for j in page.next_fetches() {
                    remaining.insert(j, page.size_of(j));
                }
            }
            if spent == 0 {
                break;
            }
        }
        if page.is_complete() {
            return page.load_time().map(|d| d.as_secs_f64());
        }
        t = slice_end;
    }
    None
}

#[allow(unused)]
fn _dur(_: SimDuration) {}

#[cfg(test)]
mod tests {
    use super::replay_page_load;
    use wgtt_sim::time::{SimDuration, SimTime};

    #[test]
    fn steady_bandwidth_loads_the_page() {
        // 20 Mbit/s steady for 10 s: 2.1 MB should load in ≈0.9 s.
        let start = SimTime::from_millis(0);
        let end = SimTime::from_secs(10);
        let trace: Vec<(SimTime, u64)> = (0..1000)
            .map(|i| (start + SimDuration::from_millis(i * 10), 25_000))
            .collect();
        let t = replay_page_load(&trace, start, end).expect("must complete");
        assert!((0.8..1.2).contains(&t), "load time {t}");
    }

    #[test]
    fn starved_trace_never_completes() {
        let start = SimTime::from_millis(0);
        let end = SimTime::from_secs(5);
        let trace = vec![(SimTime::from_millis(100), 10_000u64)];
        assert!(replay_page_load(&trace, start, end).is_none());
    }
}
