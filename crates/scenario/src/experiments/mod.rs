//! One driver per table and figure of the paper's evaluation (§2, §5).
//!
//! Every experiment is a function from a seed to an
//! [`crate::results::ExperimentOutput`] whose rows have
//! the same shape as the paper's artifact. DESIGN.md §4 maps each id to
//! the paper's section; EXPERIMENTS.md records paper-vs-measured values.
//!
//! | id | artifact |
//! |----|----------|
//! | `fig2` | ESNR vs time and best-AP flips (the vehicular picocell regime) |
//! | `fig4` | stock 802.11r failure at speed, capacity loss |
//! | `table1` | switching-protocol execution time vs offered load |
//! | `fig13` | TCP/UDP throughput vs speed, WGTT vs Enhanced 802.11r |
//! | `fig14`/`fig15` | TCP/UDP throughput + serving-AP timeline @15 mph |
//! | `fig16` | link bit-rate CDF |
//! | `table2` | switching accuracy |
//! | `fig17` | per-client throughput vs client count |
//! | `fig18` | uplink loss, multi-AP reception vs single link |
//! | `fig20` | following / parallel / opposing two-car cases |
//! | `fig21` | capacity loss vs selection window *W* |
//! | `table3` | link-layer ACK collision rate |
//! | `fig22` | time-hysteresis sweep |
//! | `fig23` | AP density (sparse vs dense segments) |
//! | `table4` | video rebuffer ratio |
//! | `fig24` | conferencing fps CDF |
//! | `table5` | web page load time |
//!
//! Extensions beyond the paper's artifacts: `fig10` (coverage heatmap),
//! `ablation_selector`, `ablation_back_fwd`, `ext_stop_and_go`,
//! `ext_multichannel` (the §7 discussion, implemented), and
//! `fleet_smoke` (a CI-sized [`crate::fleet`] corridor), and
//! `policy_smoke` (the same corridor under each [`wgtt::policy`]
//! switch policy).

pub mod apps;
pub mod common;
pub mod endtoend;
pub mod extensions;
pub mod fleetexp;
pub mod micro;
pub mod motivation;
pub mod multiclient;

use crate::results::ExperimentOutput;

/// Run an experiment by id. `quick` shrinks sweeps for smoke testing.
pub fn run(id: &str, seed: u64, quick: bool) -> Option<ExperimentOutput> {
    Some(match id {
        "fig2" => motivation::fig2(seed),
        "fig4" => motivation::fig4(seed),
        "table1" => micro::table1(seed, quick),
        "fig13" => endtoend::fig13(seed, quick),
        "fig14" => endtoend::fig14(seed),
        "fig15" => endtoend::fig15(seed),
        "fig16" => endtoend::fig16(seed),
        "table2" => endtoend::table2(seed),
        "fig17" => multiclient::fig17(seed, quick),
        "fig18" => multiclient::fig18(seed),
        "fig20" => multiclient::fig20(seed),
        "fig21" => micro::fig21(seed),
        "table3" => micro::table3(seed, quick),
        "fig22" => micro::fig22(seed),
        "fig23" => micro::fig23(seed, quick),
        "table4" => apps::table4(seed, quick),
        "fig24" => apps::fig24(seed),
        "table5" => apps::table5(seed, quick),
        "fig10" => extensions::fig10(seed),
        "ablation_selector" => extensions::ablation_selector(seed),
        "ablation_back_fwd" => extensions::ablation_back_fwd(seed),
        "ext_stop_and_go" => extensions::ext_stop_and_go(seed),
        "ext_multichannel" => extensions::ext_multichannel(seed),
        "fleet_smoke" => fleetexp::fleet_smoke(seed, quick),
        "policy_smoke" => fleetexp::policy_smoke(seed, quick),
        _ => return None,
    })
}

/// Render `ids` on up to `jobs` worker threads and concatenate the
/// outputs in the requested order (each followed by a blank line, the
/// shape `wgtt-experiments` prints).
///
/// Each experiment is internally deterministic — a pure function of
/// `(id, seed, quick)` — and workers only race for *which* id to pull
/// next, never for what it produces, so the result is byte-identical
/// for every `jobs` value. `tests/integration_determinism.rs` pins
/// that guarantee.
pub fn render_all(ids: &[String], seed: u64, quick: bool, csv: bool, jobs: usize) -> String {
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<String>>> =
        ids.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= ids.len() {
                    break;
                }
                let rendered = match run(&ids[i], seed, quick) {
                    Some(out) => {
                        if csv {
                            out.render_csv()
                        } else {
                            out.render()
                        }
                    }
                    None => format!("unknown experiment id: {} (try --list)\n", ids[i]),
                };
                *results[i].lock().expect("no panics hold this lock") = Some(rendered);
            });
        }
    });
    let mut out = String::new();
    for r in &results {
        if let Some(s) = r.lock().expect("threads joined").take() {
            out.push_str(&s);
            out.push('\n');
        }
    }
    out
}

/// Every experiment id: the paper's artifacts in paper order, then the
/// extension/ablation studies.
pub const ALL: [&str; 25] = [
    "fig2",
    "fig4",
    "table1",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table2",
    "fig17",
    "fig18",
    "fig20",
    "fig21",
    "table3",
    "fig22",
    "fig23",
    "table4",
    "fig24",
    "table5",
    "fig10",
    "ablation_selector",
    "ablation_back_fwd",
    "ext_stop_and_go",
    "ext_multichannel",
    "fleet_smoke",
    "policy_smoke",
];
