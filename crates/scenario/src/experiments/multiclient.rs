//! Multi-client results: Figs. 17, 18, and 20.

use crate::experiments::common::{drive_multi, mps};
use crate::results::{f, ExperimentOutput};
use crate::testbed::{ClientPlan, TestbedConfig};
use crate::world::{FlowSpec, SystemKind, World};
use wgtt::WgttConfig;
use wgtt_mac::frame::NodeId;
use wgtt_net::packet::FlowId;
use wgtt_sim::time::{SimDuration, SimTime};

fn wgtt() -> SystemKind {
    SystemKind::Wgtt(WgttConfig::default())
}

/// Fig. 17: average per-client downlink throughput with 1–3 clients in a
/// 15 mph convoy.
pub fn fig17(seed: u64, quick: bool) -> ExperimentOutput {
    let counts: &[usize] = if quick { &[1, 3] } else { &[1, 2, 3] };
    let mut out = ExperimentOutput::new(
        "fig17",
        "Per-client downlink throughput vs number of clients (15 mph, Mbit/s)",
        &[
            "clients",
            "TCP WGTT",
            "TCP 802.11r",
            "UDP WGTT",
            "UDP 802.11r",
        ],
    );
    for &n in counts {
        let per_client = |sys: SystemKind, spec_of: &dyn Fn(usize) -> FlowSpec| -> f64 {
            let specs: Vec<(usize, FlowSpec)> = (0..n).map(|i| (i, spec_of(i))).collect();
            let run = drive_multi(sys, 15.0, specs, n, seed);
            let total: f64 = (0..n)
                .map(|i| {
                    run.world
                        .report
                        .flow_meters
                        .get(&FlowId(i as u32))
                        .map(|m| m.mbps_over(run.start, run.end))
                        .unwrap_or(0.0)
                })
                .sum();
            total / n as f64
        };
        let tcp = |_: usize| FlowSpec::DownlinkTcpBulk;
        let udp = |_: usize| FlowSpec::DownlinkUdp { rate_mbps: 15.0 };
        out.row(vec![
            n.to_string(),
            f(per_client(wgtt(), &tcp), 2),
            f(per_client(SystemKind::Enhanced80211r, &tcp), 2),
            f(per_client(wgtt(), &udp), 2),
            f(per_client(SystemKind::Enhanced80211r, &udp), 2),
        ]);
    }
    out.note("paper: gap widens to ≈2.6× (TCP) / 2.4× (UDP) at three clients");
    out
}

/// Fig. 18: uplink UDP loss rate for three clients — WGTT's multi-AP
/// reception vs a single (serving-AP-only) uplink.
pub fn fig18(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig18",
        "Uplink UDP loss rate, three 15 mph clients",
        &[
            "client",
            "WGTT loss",
            "single-link loss",
            "WGTT dup. copies",
        ],
    );
    let specs: Vec<(usize, FlowSpec)> = (0..3)
        .map(|i| (i, FlowSpec::UplinkUdp { rate_mbps: 5.0 }))
        .collect();
    let w = drive_multi(wgtt(), 15.0, specs.clone(), 3, seed);
    let b = drive_multi(SystemKind::Enhanced80211r, 15.0, specs, 3, seed);
    let loss = |run: &crate::experiments::common::DriveRun, i: u32| -> f64 {
        run.world
            .report
            .udp_counts
            .get(&FlowId(i))
            .map(|&(sent, recv)| {
                if sent == 0 {
                    0.0
                } else {
                    1.0 - recv.min(sent) as f64 / sent as f64
                }
            })
            .unwrap_or(1.0)
    };
    let (fwd, dup) = w.world.report.uplink_dedup;
    for i in 0..3u32 {
        out.row(vec![
            format!("client {}", i + 1),
            f(loss(&w, i), 3),
            f(loss(&b, i), 3),
            if i == 0 {
                format!("{dup}/{fwd}")
            } else {
                "".into()
            },
        ]);
    }
    out.note(
        "paper: multi-AP reception keeps loss below 0.02 while a single uplink swings to 0.4+",
    );
    out
}

/// Fig. 20: two-client placement cases — (a) following at 3 m,
/// (b) parallel lanes, (c) opposing directions — at 15 mph.
pub fn fig20(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig20",
        "Two-client cases at 15 mph (per-client mean, Mbit/s)",
        &["case", "TCP WGTT", "TCP 802.11r", "UDP WGTT", "UDP 802.11r"],
    );
    let testbed = TestbedConfig::paper_array();
    let road = testbed.road_len();
    let cases: Vec<(&str, Vec<ClientPlan>)> = vec![
        (
            "(a) following",
            vec![ClientPlan::drive_by(15.0), ClientPlan::following(15.0, 3.0)],
        ),
        (
            "(b) parallel",
            vec![ClientPlan::drive_by(15.0), ClientPlan::parallel(15.0)],
        ),
        (
            "(c) opposing",
            vec![ClientPlan::drive_by(15.0), ClientPlan::opposing(15.0, road)],
        ),
    ];
    for (name, plans) in cases {
        let run_case = |sys: SystemKind, spec: FlowSpec| -> f64 {
            let cfg = TestbedConfig::paper_array().with_clients(plans.clone());
            let speed = mps(15.0);
            let start = SimTime::from_secs_f64(7.0 / speed);
            let dur = SimDuration::from_secs_f64((road + 30.0 + 15.0) / speed);
            let mut w = World::new(cfg, sys, vec![spec, spec], seed);
            w.traffic_start = start;
            w.run(dur);
            let end = SimTime::ZERO + dur;
            let total: f64 = (0..2)
                .map(|i| {
                    w.report
                        .flow_meters
                        .get(&FlowId(i))
                        .map(|m| m.mbps_over(start, end))
                        .unwrap_or(0.0)
                })
                .sum();
            total / 2.0
        };
        out.row(vec![
            name.into(),
            f(run_case(wgtt(), FlowSpec::DownlinkTcpBulk), 2),
            f(
                run_case(SystemKind::Enhanced80211r, FlowSpec::DownlinkTcpBulk),
                2,
            ),
            f(
                run_case(wgtt(), FlowSpec::DownlinkUdp { rate_mbps: 15.0 }),
                2,
            ),
            f(
                run_case(
                    SystemKind::Enhanced80211r,
                    FlowSpec::DownlinkUdp { rate_mbps: 15.0 },
                ),
                2,
            ),
        ]);
    }
    out.note(
        "paper: (c) opposing best (least contention), (b) parallel worst; WGTT wins all cases",
    );
    out
}

// NodeId used in sibling modules through this re-export pattern; silence
// the lint locally if unused here in future edits.
#[allow(unused)]
fn _unused(_: NodeId) {}
