//! Microbenchmarks: Table 1, Fig. 21, Table 3, Fig. 22, Fig. 23.

use crate::experiments::common::{drive, mps};
use crate::experiments::motivation::radio_links;
use crate::results::{f, ExperimentOutput};
use crate::testbed::{ClientPlan, TestbedConfig};
use crate::world::{FlowSpec, SystemKind, World};
use wgtt::WgttConfig;
use wgtt_mac::mcs::capacity_mbps;
use wgtt_radio::Modulation;
use wgtt_sim::time::{SimDuration, SimTime};

fn wgtt() -> SystemKind {
    SystemKind::Wgtt(WgttConfig::default())
}

/// Table 1: switching-protocol execution time (stop → ack) under
/// different offered UDP loads.
pub fn table1(seed: u64, quick: bool) -> ExperimentOutput {
    let rates: &[f64] = if quick {
        &[50.0, 90.0]
    } else {
        &[50.0, 60.0, 70.0, 80.0, 90.0]
    };
    let mut out = ExperimentOutput::new(
        "table1",
        "Switching-protocol execution time vs offered UDP load",
        &["rate (Mbit/s)", "switches", "mean (ms)", "std (ms)"],
    );
    for &rate in rates {
        let run = drive(
            wgtt(),
            15.0,
            FlowSpec::DownlinkUdp { rate_mbps: rate },
            seed,
        );
        let d = &run.world.report.switch_durations;
        out.row(vec![
            f(rate, 0),
            d.len().to_string(),
            d.mean().map(|m| f(m * 1e3, 1)).unwrap_or("-".into()),
            d.std_dev().map(|s| f(s * 1e3, 1)).unwrap_or("-".into()),
        ]);
    }
    out.note("paper: 17–21 ms mean, 3–5 ms std, flat across offered load");
    out
}

/// Fig. 21: capacity loss against the selection window size *W* —
/// the paper's trace-driven emulation. We sample per-AP ESNR traces from
/// the radio model at CSI-report granularity and replay the max-median
/// selection rule offline for each W.
pub fn fig21(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig21",
        "Mean capacity loss vs selection window W (15 mph emulation)",
        &["W (ms)", "capacity loss (Mbit/s)"],
    );
    let (links, plan) = radio_links(8, 15.0, seed);
    // CSI readings arrive roughly every millisecond under load.
    const CSI_PERIOD_MS: u64 = 1;
    let t_start = SimTime::from_secs_f64(7.0 / plan.speed_mps);
    let span_s = 73.0 / plan.speed_mps;
    let steps = (span_s * 1000.0 / CSI_PERIOD_MS as f64) as usize;
    // Pre-sample every link's true ESNR and a noisy *measured* reading
    // (CSI estimation error ≈1.5 dB) at every step — the paper's readings
    // are measurements, and the noise is exactly why small windows lose.
    let mut esnr: Vec<Vec<f64>> = vec![Vec::with_capacity(steps); links.len()];
    let mut meas: Vec<Vec<f64>> = vec![Vec::with_capacity(steps); links.len()];
    let mut noise_rng = wgtt_sim::rng::RngStream::root(seed)
        .derive("csi-noise")
        .rng();
    for i in 0..steps {
        let t = t_start + SimDuration::from_millis(i as u64 * CSI_PERIOD_MS);
        let pos = plan.position_at(t);
        for (l, link) in links.iter().enumerate() {
            let e = link.snapshot(t, pos).esnr_db(Modulation::Qam16);
            esnr[l].push(e);
            meas[l].push(e + noise_rng.normal_with(0.0, 2.5));
        }
    }
    for &w_ms in &[2u64, 5, 10, 20, 50, 100, 200, 400] {
        let w_steps = (w_ms / CSI_PERIOD_MS).max(1) as usize;
        let mut loss_acc = 0.0;
        let mut n = 0u64;
        for i in 0..steps {
            let lo = i.saturating_sub(w_steps - 1);
            // Median ESNR per AP over the window.
            let chosen = (0..links.len())
                .max_by(|&a, &b| {
                    let ma = median(&meas[a][lo..=i]);
                    let mb = median(&meas[b][lo..=i]);
                    ma.partial_cmp(&mb).expect("finite")
                })
                .expect("links");
            let oracle = (0..links.len())
                .max_by(|&a, &b| esnr[a][i].partial_cmp(&esnr[b][i]).expect("finite"))
                .expect("links");
            if esnr[oracle][i] > 2.0 {
                loss_acc += capacity_mbps(esnr[oracle][i]) - capacity_mbps(esnr[chosen][i]);
                n += 1;
            }
        }
        out.row(vec![
            w_ms.to_string(),
            f(if n > 0 { loss_acc / n as f64 } else { 0.0 }, 2),
        ]);
    }
    out.note("paper: loss is minimized at W = 10 ms, rising on both sides");
    out
}

fn median(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

/// Table 3: link-layer (Block) ACK collision rate at the client during
/// uplink UDP at high offered loads.
pub fn table3(seed: u64, quick: bool) -> ExperimentOutput {
    let rates: &[f64] = if quick { &[70.0] } else { &[70.0, 80.0, 90.0] };
    let mut out = ExperimentOutput::new(
        "table3",
        "AP acknowledgement collision rate at the client (uplink UDP)",
        &["rate (Mbit/s)", "AP BAs sent", "collisions", "rate (%)"],
    );
    for &rate in rates {
        let run = drive(wgtt(), 15.0, FlowSpec::UplinkUdp { rate_mbps: rate }, seed);
        let sent = run.world.report.ba_responses.get();
        let coll = run.world.report.ba_collisions.get();
        out.row(vec![
            f(rate, 0),
            sent.to_string(),
            coll.to_string(),
            f(
                if sent > 0 {
                    100.0 * coll as f64 / sent as f64
                } else {
                    0.0
                },
                3,
            ),
        ]);
    }
    out.note("paper: 0.001–0.004 % — response jitter + sidelobes make collisions rare");
    out
}

/// Fig. 22: TCP throughput for switching hysteresis T ∈ {40, 80, 120} ms.
pub fn fig22(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig22",
        "TCP throughput vs switching time hysteresis (15 mph)",
        &["T (ms)", "mean Mbit/s", "switches"],
    );
    for &t_ms in &[40u64, 80, 120] {
        let cfg = WgttConfig {
            switch_hysteresis: SimDuration::from_millis(t_ms),
            ..WgttConfig::default()
        };
        let run = drive(SystemKind::Wgtt(cfg), 15.0, FlowSpec::DownlinkTcpBulk, seed);
        out.row(vec![
            t_ms.to_string(),
            f(run.mean_mbps(), 2),
            run.world.report.switches.to_string(),
        ]);
    }
    out.note("paper: smaller hysteresis adapts faster — throughput grows as T shrinks to 40 ms");
    out
}

/// Fig. 23: UDP throughput in the dense (AP1–AP4) vs sparse (AP5–AP8)
/// halves of the array at low speeds.
pub fn fig23(seed: u64, quick: bool) -> ExperimentOutput {
    let speeds: &[f64] = if quick {
        &[5.0, 10.0]
    } else {
        &[2.0, 5.0, 8.0, 10.0]
    };
    let mut out = ExperimentOutput::new(
        "fig23",
        "UDP throughput in dense vs sparse AP segments (Mbit/s)",
        &[
            "speed",
            "dense WGTT",
            "dense 802.11r",
            "sparse WGTT",
            "sparse 802.11r",
        ],
    );
    // Segment bounds along the road (paper array: dense 0–18 m, sparse
    // 26–53 m).
    let segment = |sys: SystemKind, speed: f64, x0: f64, x1: f64, seed: u64| -> f64 {
        let v = mps(speed);
        let plan = ClientPlan {
            start: wgtt_radio::Position::new(x0 - 8.0, 0.0),
            speed_mps: v,
            direction: crate::testbed::Direction::East,
            stop: None,
            shuttle: None,
        };
        let cfg = TestbedConfig::paper_array().with_clients(vec![plan]);
        let start = SimTime::from_secs_f64(8.0 / v);
        let end = start + SimDuration::from_secs_f64((x1 - x0) / v);
        let mut w = World::new(
            cfg,
            sys,
            vec![FlowSpec::DownlinkUdp { rate_mbps: 15.0 }],
            seed,
        );
        w.traffic_start = start;
        w.run(end.saturating_since(SimTime::ZERO));
        w.report
            .flow_meters
            .get(&wgtt_net::packet::FlowId(0))
            .map(|m| m.mbps_over(start, end))
            .unwrap_or(0.0)
    };
    for &speed in speeds {
        out.row(vec![
            format!("{speed} mph"),
            f(segment(wgtt(), speed, 0.0, 18.0, seed), 2),
            f(
                segment(SystemKind::Enhanced80211r, speed, 0.0, 18.0, seed),
                2,
            ),
            f(segment(wgtt(), speed, 26.0, 53.0, seed), 2),
            f(
                segment(SystemKind::Enhanced80211r, speed, 26.0, 53.0, seed),
                2,
            ),
        ]);
    }
    out.note("paper: denser deployment lifts WGTT throughput (≈6.7 → ≈9.3 Mbit/s)");
    out
}
