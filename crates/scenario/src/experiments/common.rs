//! Shared experiment plumbing: standard drive-through runs.

use crate::testbed::{ClientPlan, TestbedConfig, MPH};
use crate::world::{FlowSpec, SystemKind, World};
use wgtt_radio::Position;
use wgtt_sim::time::{SimDuration, SimTime};

/// Coverage begins roughly this many metres before the first AP.
const COVERAGE_LEAD_M: f64 = 8.0;

/// A completed drive-through run plus its measurement window.
pub struct DriveRun {
    /// The finished world (read `world.report`).
    pub world: World,
    /// Traffic/measurement start.
    pub start: SimTime,
    /// Measurement end.
    pub end: SimTime,
}

impl DriveRun {
    /// Mean goodput of flow 0 over the measurement window, Mbit/s.
    pub fn mean_mbps(&self) -> f64 {
        self.world
            .report
            .flow_meters
            .get(&wgtt_net::packet::FlowId(0))
            .map(|m| m.mbps_over(self.start, self.end))
            .unwrap_or(0.0)
    }

    /// Measurement window length.
    pub fn window(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Drive one client past the full eight-AP array at `speed_mph` carrying
/// `spec`; traffic starts as the client enters coverage. A zero speed
/// parks the client inside AP2's cell for 10 s (the "static" point of
/// Fig. 13).
pub fn drive(system: SystemKind, speed_mph: f64, spec: FlowSpec, seed: u64) -> DriveRun {
    drive_multi(system, speed_mph, vec![(0, spec)], 1, seed)
}

/// Like [`drive`] but with `n_clients` in a 3 m-spaced convoy and
/// explicit `(client, spec)` flow attachments.
pub fn drive_multi(
    system: SystemKind,
    speed_mph: f64,
    specs: Vec<(usize, FlowSpec)>,
    n_clients: usize,
    seed: u64,
) -> DriveRun {
    let testbed = TestbedConfig::paper_array();
    let (plans, start, end): (Vec<ClientPlan>, SimTime, SimTime) = if speed_mph <= 0.0 {
        let plan = ClientPlan {
            start: Position::new(12.0, 0.0), // inside AP2's cell
            speed_mps: 0.0,
            direction: crate::testbed::Direction::East,
            stop: None,
            shuttle: None,
        };
        (
            (0..n_clients).map(|_| plan).collect(),
            SimTime::from_millis(200),
            SimTime::from_millis(200) + SimDuration::from_secs(10),
        )
    } else {
        let plans: Vec<ClientPlan> = (0..n_clients)
            .map(|i| ClientPlan::following(speed_mph, 3.0 * i as f64))
            .collect();
        let lead = plans[0];
        // Traffic starts when the lead car is COVERAGE_LEAD_M before AP0.
        let start_dist = (-lead.start.x - COVERAGE_LEAD_M).max(0.0);
        let start = SimTime::from_secs_f64(start_dist / lead.speed_mps);
        // Measure until the *last* car clears the array (+ tail).
        let total = testbed.road_len() + 15.0 + COVERAGE_LEAD_M + 3.0 * n_clients as f64;
        let end = start + SimDuration::from_secs_f64(total / lead.speed_mps);
        (plans, start, end)
    };
    let cfg = testbed.with_clients(plans);
    let mut world = World::new_multi(cfg, system, specs, seed);
    world.traffic_start = start;
    world.run(end.saturating_since(SimTime::ZERO));
    DriveRun { world, start, end }
}

/// Metres/second for a mph figure (re-export for experiment code).
pub fn mps(speed_mph: f64) -> f64 {
    speed_mph * MPH
}
