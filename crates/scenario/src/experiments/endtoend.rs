//! End-to-end single-client results: Figs. 13–16 and Table 2.

use crate::experiments::common::{drive, DriveRun};
use crate::results::{f, ExperimentOutput};
use crate::world::{FlowSpec, SystemKind};
use wgtt::WgttConfig;
use wgtt_mac::frame::NodeId;
use wgtt_net::packet::FlowId;
use wgtt_sim::time::SimDuration;

const CLIENT: NodeId = NodeId(100);

fn wgtt() -> SystemKind {
    SystemKind::Wgtt(WgttConfig::default())
}

/// Fig. 13: TCP and UDP downlink throughput against client speed,
/// WGTT vs Enhanced 802.11r.
pub fn fig13(seed: u64, quick: bool) -> ExperimentOutput {
    let speeds: &[f64] = if quick {
        &[0.0, 15.0, 35.0]
    } else {
        &[0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 35.0]
    };
    let mut out = ExperimentOutput::new(
        "fig13",
        "TCP/UDP throughput vs driving speed (Mbit/s)",
        &[
            "speed",
            "TCP WGTT",
            "TCP 802.11r",
            "UDP WGTT",
            "UDP 802.11r",
            "TCP gain",
            "UDP gain",
        ],
    );
    let n_seeds = if quick { 1 } else { 3 };
    let avg = |sys: SystemKind, speed: f64, spec: FlowSpec| -> f64 {
        (0..n_seeds)
            .map(|i| drive(sys, speed, spec, seed + i as u64).mean_mbps())
            .sum::<f64>()
            / n_seeds as f64
    };
    for &speed in speeds {
        let tw = avg(wgtt(), speed, FlowSpec::DownlinkTcpBulk);
        let tb = avg(SystemKind::Enhanced80211r, speed, FlowSpec::DownlinkTcpBulk);
        let uw = avg(wgtt(), speed, FlowSpec::DownlinkUdp { rate_mbps: 30.0 });
        let ub = avg(
            SystemKind::Enhanced80211r,
            speed,
            FlowSpec::DownlinkUdp { rate_mbps: 30.0 },
        );
        out.row(vec![
            if speed == 0.0 {
                "static".into()
            } else {
                format!("{speed} mph")
            },
            f(tw, 2),
            f(tb, 2),
            f(uw, 2),
            f(ub, 2),
            f(if tb > 0.0 { tw / tb } else { f64::INFINITY }, 1),
            f(if ub > 0.0 { uw / ub } else { f64::INFINITY }, 1),
        ]);
    }
    out.note("paper: 2.4–4.7× TCP and 2.6–4.0× UDP gains at 5–25 mph; flat WGTT curve");
    out
}

fn timeline(run: &DriveRun, label: &str, out: &mut ExperimentOutput) {
    let bin = SimDuration::from_millis(500);
    let bins = (run.window().as_nanos() / bin.as_nanos()) as usize;
    let meter = &run.world.report.flow_meters[&FlowId(0)];
    let tput = meter.binned_mbps(run.start, bin, bins);
    let serving = run
        .world
        .report
        .serving_series
        .get(&CLIENT)
        .map(|ts| ts.resample(run.start, bin, bins))
        .unwrap_or_default();
    for (i, &mbps) in tput.iter().enumerate().take(bins) {
        out.row(vec![
            label.to_string(),
            f(i as f64 * 0.5, 1),
            f(mbps, 2),
            serving
                .get(i)
                .map(|&s| {
                    if s.is_nan() {
                        "-".into()
                    } else {
                        format!("AP{}", s as u32)
                    }
                })
                .unwrap_or_else(|| "-".into()),
        ]);
    }
}

/// Fig. 14: TCP throughput + serving-AP timeline during a 15 mph drive.
pub fn fig14(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig14",
        "TCP throughput and serving AP over a 15 mph drive",
        &["system", "t (s)", "Mbit/s", "AP"],
    );
    let w = drive(wgtt(), 15.0, FlowSpec::DownlinkTcpBulk, seed);
    timeline(&w, "WGTT", &mut out);
    let b = drive(
        SystemKind::Enhanced80211r,
        15.0,
        FlowSpec::DownlinkTcpBulk,
        seed,
    );
    timeline(&b, "802.11r", &mut out);
    let wt = w
        .world
        .report
        .tcp_timeouts
        .get(&FlowId(0))
        .copied()
        .unwrap_or(0);
    let bt = b
        .world
        .report
        .tcp_timeouts
        .get(&FlowId(0))
        .copied()
        .unwrap_or(0);
    out.note(format!(
        "TCP RTO events — WGTT: {wt}, Enhanced 802.11r: {bt} (paper: baseline hits a fatal timeout ≈5.9 s)"
    ));
    out.note(format!(
        "switches — WGTT: {} (≈5/s in the paper), 802.11r: {}",
        w.world.report.switches, b.world.report.switches
    ));
    out
}

/// Fig. 15: same timeline for UDP.
pub fn fig15(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig15",
        "UDP throughput and serving AP over a 15 mph drive",
        &["system", "t (s)", "Mbit/s", "AP"],
    );
    let w = drive(
        wgtt(),
        15.0,
        FlowSpec::DownlinkUdp { rate_mbps: 30.0 },
        seed,
    );
    timeline(&w, "WGTT", &mut out);
    let b = drive(
        SystemKind::Enhanced80211r,
        15.0,
        FlowSpec::DownlinkUdp { rate_mbps: 30.0 },
        seed,
    );
    timeline(&b, "802.11r", &mut out);
    out.note(format!(
        "switches — WGTT: {}, 802.11r: {} (paper: 802.11r switches only 3× in 10 s)",
        w.world.report.switches, b.world.report.switches
    ));
    out
}

/// Fig. 16: CDF of the PHY bit rate of transmitted frames at 15 mph.
pub fn fig16(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig16",
        "Link bit-rate CDF at 15 mph (Mbit/s)",
        &["system", "flow", "p10", "p50", "p90", "mean"],
    );
    for (sys, name) in [(wgtt(), "WGTT"), (SystemKind::Enhanced80211r, "802.11r")] {
        for (spec, fname) in [
            (FlowSpec::DownlinkTcpBulk, "TCP"),
            (FlowSpec::DownlinkUdp { rate_mbps: 30.0 }, "UDP"),
        ] {
            let run = drive(sys, 15.0, spec, seed);
            let d = run
                .world
                .report
                .bitrate_series
                .get(&CLIENT)
                .cloned()
                .unwrap_or_default();
            out.row(vec![
                name.into(),
                fname.into(),
                d.quantile(0.1).map(|v| f(v, 1)).unwrap_or("-".into()),
                d.quantile(0.5).map(|v| f(v, 1)).unwrap_or("-".into()),
                d.quantile(0.9).map(|v| f(v, 1)).unwrap_or("-".into()),
                d.mean().map(|v| f(v, 1)).unwrap_or("-".into()),
            ]);
        }
    }
    out.note("paper: WGTT's 90th-percentile bit rate ≈70 Mbit/s, ≈30 above Enhanced 802.11r");
    out
}

/// Table 2: switching accuracy — fraction of time the serving AP is the
/// instantaneous max-ESNR AP.
pub fn table2(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "table2",
        "Switching accuracy at 15 mph (% of in-coverage time on the oracle-best AP)",
        &["flow", "WGTT %", "Enhanced 802.11r %"],
    );
    for (spec, name) in [
        (FlowSpec::DownlinkTcpBulk, "TCP"),
        (FlowSpec::DownlinkUdp { rate_mbps: 30.0 }, "UDP"),
    ] {
        let acc = |sys: SystemKind| -> f64 {
            let run = drive(sys, 15.0, spec, seed);
            let r = &run.world.report;
            if r.accuracy_total > 0.0 {
                100.0 * r.accuracy_hits / r.accuracy_total
            } else {
                0.0
            }
        };
        out.row(vec![
            name.into(),
            f(acc(wgtt()), 2),
            f(acc(SystemKind::Enhanced80211r), 2),
        ]);
    }
    out.note("paper: 90.12/91.38 % (WGTT) vs 20.24/18.72 % (Enhanced 802.11r)");
    out
}
