//! Motivation artifacts: Fig. 2 (the vehicular picocell regime) and
//! Fig. 4 (stock 802.11r failing at driving speed).

use crate::results::{f, ExperimentOutput};
use crate::testbed::{ClientPlan, TestbedConfig};
use crate::world::{FlowSpec, SystemKind, World};
use wgtt_mac::frame::NodeId;
use wgtt_mac::mcs::capacity_mbps;
use wgtt_radio::fading::FadingProcess;
use wgtt_radio::link::{Link, LinkBudget};
use wgtt_radio::{Modulation, ParabolicAntenna, PathLossModel};
use wgtt_sim::rng::RngStream;
use wgtt_sim::time::{SimDuration, SimTime};

/// Build the pure-radio links of the first `n` APs of the paper array
/// for a client moving at `speed_mph` (no MAC, no world — Fig. 2 and the
/// Fig. 21 emulation sample the channel directly).
pub fn radio_links(n: usize, speed_mph: f64, seed: u64) -> (Vec<Link>, ClientPlan) {
    let testbed = TestbedConfig::paper_array();
    let plan = ClientPlan::drive_by(speed_mph);
    let root = RngStream::root(seed);
    let links = testbed
        .ap_positions()
        .into_iter()
        .take(n)
        .enumerate()
        .map(|(ai, ap_pos)| Link {
            ap_pos,
            ap_boresight_rad: -std::f64::consts::FRAC_PI_2,
            ap_antenna: ParabolicAntenna::laird_gd24bp(),
            client_antenna_dbi: 0.0,
            budget: LinkBudget::default(),
            pathloss: PathLossModel::roadside(),
            fading: FadingProcess::new(
                root.derive("link")
                    .derive_indexed("ap", ai as u64)
                    .derive_indexed("client", 0),
                crate::experiments::common::mps(speed_mph),
                9.0,
            ),
            shadowing: None,
            memo: Default::default(),
        })
        .collect();
    (links, plan)
}

/// Fig. 2: ESNR of three adjacent APs sampled every millisecond while a
/// client drives by at 25 mph; the lower artifact is the best-AP
/// timeline, flipping at millisecond scale.
pub fn fig2(seed: u64) -> ExperimentOutput {
    let (links, plan) = radio_links(3, 25.0, seed);
    let mut out = ExperimentOutput::new(
        "fig2",
        "ESNR traces and best-AP flips in the vehicular picocell regime (25 mph)",
        &[
            "window",
            "best=AP1 %",
            "best=AP2 %",
            "best=AP3 %",
            "flips/s",
            "median hold (ms)",
        ],
    );
    // Drive through the three-AP stretch (x ∈ [-5, 20] → 2.25 s at 25 mph).
    let t_start = SimTime::from_secs_f64(10.0 / plan.speed_mps); // x = -5
    let span_s = 25.0 / plan.speed_mps;
    let steps = (span_s * 1000.0) as usize;
    let mut counts = [0u64; 3];
    let mut flips = 0u64;
    let mut holds: Vec<f64> = Vec::new();
    let mut hold_ms = 0.0;
    let mut last_best: Option<usize> = None;
    for i in 0..steps {
        let t = t_start + SimDuration::from_millis(i as u64);
        let pos = plan.position_at(t);
        let best = (0..3)
            .max_by(|&a, &b| {
                let ea = links[a].snapshot(t, pos).esnr_db(Modulation::Qam16);
                let eb = links[b].snapshot(t, pos).esnr_db(Modulation::Qam16);
                ea.partial_cmp(&eb).expect("ESNR never NaN")
            })
            .expect("three links");
        counts[best] += 1;
        match last_best {
            Some(prev) if prev != best => {
                flips += 1;
                holds.push(hold_ms);
                hold_ms = 1.0;
            }
            _ => hold_ms += 1.0,
        }
        last_best = Some(best);
    }
    holds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_hold = holds.get(holds.len() / 2).copied().unwrap_or(span_s * 1e3);
    let total = steps as f64;
    out.row(vec![
        format!("{:.2}s drive", span_s),
        f(100.0 * counts[0] as f64 / total, 1),
        f(100.0 * counts[1] as f64 / total, 1),
        f(100.0 * counts[2] as f64 / total, 1),
        f(flips as f64 / span_s, 1),
        f(median_hold, 1),
    ]);
    out.note("paper: the best AP changes every few milliseconds near cell overlaps");
    out
}

/// Fig. 4: stock 802.11r on the two-AP §2 testbed at 20 and 5 mph:
/// received UDP packets, whether the handover happened, and the
/// accumulated capacity loss relative to an oracle link.
pub fn fig4(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig4",
        "Stock 802.11r handover at driving speed (two-AP testbed, UDP)",
        &["speed", "pkts rcvd", "handover", "capacity loss (Mbit/s)"],
    );
    for &speed in &[20.0, 5.0] {
        let plan = ClientPlan::drive_by(speed);
        let cfg = TestbedConfig::two_ap().with_clients(vec![plan]);
        let transit = SimDuration::from_secs_f64(
            (15.0 + 7.5 + 15.0) / crate::experiments::common::mps(speed),
        );
        let mut w = World::new(
            cfg,
            SystemKind::Stock80211r,
            vec![FlowSpec::DownlinkUdp { rate_mbps: 30.0 }],
            seed,
        );
        w.traffic_start = SimTime::from_secs_f64(7.0 / crate::experiments::common::mps(speed));
        w.run(transit);
        let (_sent, received) = w.report.udp_counts[&wgtt_net::packet::FlowId(0)];
        let switched = w.report.switches > 0;
        // Capacity loss: oracle capacity minus achieved goodput, averaged
        // over the in-coverage window.
        let client = NodeId(100);
        let mut oracle_acc = 0.0;
        let mut n = 0u64;
        for ap in [NodeId(0), NodeId(1)] {
            let _ = ap;
        }
        if let Some(ts) = w.report.esnr_traces.get(&(client, NodeId(0))) {
            let ts2 = w.report.esnr_traces.get(&(client, NodeId(1)));
            for (i, &(t, e0)) in ts.points().iter().enumerate() {
                let e1 = ts2
                    .and_then(|s| s.points().get(i).map(|&(_, v)| v))
                    .unwrap_or(f64::NEG_INFINITY);
                let best = e0.max(e1);
                if best > 2.0 && t >= w.traffic_start {
                    oracle_acc += capacity_mbps(best);
                    n += 1;
                }
            }
        }
        let oracle = if n > 0 { oracle_acc / n as f64 } else { 0.0 };
        let meter = &w.report.flow_meters[&wgtt_net::packet::FlowId(0)];
        let achieved = meter.mbps_over(w.traffic_start, SimTime::ZERO + transit);
        out.row(vec![
            format!("{speed} mph"),
            received.to_string(),
            if switched {
                "yes".into()
            } else {
                "FAILED".into()
            },
            f((oracle - achieved).max(0.0), 1),
        ]);
    }
    out.note("paper: handover fails outright at 20 mph (5 s RSSI history > cell dwell)");
    out
}
