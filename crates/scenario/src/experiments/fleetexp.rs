//! The fleet-corridor experiment: a small, CI-sized instance of the
//! [`crate::fleet`] generator rendered through the experiment registry,
//! so fleet runs inherit the `--jobs` byte-identity contract and the
//! smoke-test plumbing the per-figure drivers already have.

use crate::fleet::FleetConfig;
use crate::results::{f, ExperimentOutput};
use crate::world::SystemKind;
use wgtt::policy::SwitchPolicyKind;
use wgtt::WgttConfig;
use wgtt_sim::time::SimDuration;

/// `fleet_smoke`: a 10-vehicle × 8-AP corridor at the paper's picocell
/// density, reduced to the operator aggregates.
pub fn fleet_smoke(seed: u64, quick: bool) -> ExperimentOutput {
    let mut cfg = FleetConfig::corridor(10, 8);
    cfg.duration = SimDuration::from_secs(if quick { 4 } else { 15 });
    let report = cfg.run(SystemKind::Wgtt(WgttConfig::default()), seed);

    let mut out = ExperimentOutput::new(
        "fleet_smoke",
        "Fleet corridor smoke: 10 vehicles over 8 picocell APs",
        &["metric", "value"],
    );
    let opt = |v: Option<f64>| v.map_or("n/a".to_string(), |v| f(v, 2));
    out.row(vec!["vehicles".into(), report.vehicles.to_string()]);
    out.row(vec!["aps".into(), report.aps.to_string()]);
    out.row(vec!["switches".into(), report.switches.to_string()]);
    out.row(vec![
        "switch rate (/vehicle-min)".into(),
        f(report.switch_rate_per_vehicle_minute, 2),
    ]);
    out.row(vec![
        "fleet p50 of per-vehicle p50 bitrate (Mbit/s)".into(),
        opt(report.fleet_bitrate_p50(0.5)),
    ]);
    out.row(vec![
        "fleet p50 of per-vehicle p99 bitrate (Mbit/s)".into(),
        opt(report.fleet_bitrate_p99(0.5)),
    ]);
    out.row(vec![
        "outage p50 (s)".into(),
        opt(report.outage_quantile(0.5)),
    ]);
    out.row(vec![
        "outage p99 (s)".into(),
        opt(report.outage_quantile(0.99)),
    ]);
    out.row(vec![
        "full-outage vehicles".into(),
        report.full_outage_vehicles.to_string(),
    ]);
    out.note(report.digest());
    out
}

/// `policy_smoke`: the same CI-sized corridor under each switch policy
/// (reactive-median, predictive, load-aware) from one seed — the
/// registry-shaped miniature of `examples/policy_compare.rs`.
pub fn policy_smoke(seed: u64, quick: bool) -> ExperimentOutput {
    let mut cfg = FleetConfig::corridor(10, 8);
    cfg.duration = SimDuration::from_secs(if quick { 4 } else { 15 });

    let mut out = ExperimentOutput::new(
        "policy_smoke",
        "Switch-policy comparison on the fleet corridor",
        &[
            "policy",
            "switches",
            "max ap load",
            "outage p99 (s)",
            "outage >=200ms (s)",
            "p50 bitrate (Mbit/s)",
        ],
    );
    let opt = |v: Option<f64>| v.map_or("n/a".to_string(), |v| f(v, 2));
    for kind in SwitchPolicyKind::all() {
        let wcfg = WgttConfig {
            switch_policy: kind,
            ..Default::default()
        };
        let report = cfg.run(SystemKind::Wgtt(wcfg), seed);
        out.row(vec![
            kind.label().to_string(),
            report.switches.to_string(),
            report.max_ap_load.to_string(),
            opt(report.outage_quantile(0.99)),
            f(report.outage_time_over(0.2), 2),
            opt(report.fleet_bitrate_p50(0.5)),
        ]);
    }
    out
}
