//! Beyond the paper's evaluation: the Fig. 10 coverage heatmap, the
//! design-choice ablations DESIGN.md §5 calls out, and scenarios the
//! paper's §7 discussion motivates (stop-and-go traffic).

use crate::experiments::common::{drive, mps};
use crate::experiments::motivation::radio_links;
use crate::results::{f, ExperimentOutput};
use crate::testbed::{ClientPlan, TestbedConfig};
use crate::world::{FlowSpec, SystemKind, World};
use wgtt::{SelectionPolicy, WgttConfig};
use wgtt_net::packet::FlowId;
use wgtt_radio::Position;
use wgtt_sim::time::{SimDuration, SimTime};

/// Fig. 10: the per-AP coverage map along the road — large-scale mean
/// SNR sampled every 2 m at the near lane, showing the ≈5 m cells and
/// their 6–10 m overlaps.
pub fn fig10(_seed: u64) -> ExperimentOutput {
    let testbed = TestbedConfig::paper_array();
    let (links, _) = radio_links(testbed.ap_x.len(), 15.0, 1);
    let mut out = ExperimentOutput::new(
        "fig10",
        "Coverage map: mean SNR (dB) per AP along the road (near lane)",
        &[
            "x (m)", "AP1", "AP2", "AP3", "AP4", "AP5", "AP6", "AP7", "AP8", "best",
        ],
    );
    let mut x = -6.0;
    while x <= 64.0 {
        let pos = Position::new(x, 0.0);
        let snrs: Vec<f64> = links.iter().map(|l| l.mean_snr_db(pos)).collect();
        let best = snrs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i + 1)
            .expect("eight APs");
        let mut row = vec![f(x, 0)];
        row.extend(snrs.iter().map(|&v| f(v.max(-9.9), 1)));
        row.push(format!("AP{best}"));
        out.row(row);
        x += 2.0;
    }
    out.note("paper Fig. 10: cells ≈5 m wide, adjacent coverage overlapping 6–10 m");
    out
}

/// Ablation: the window-reduction policy of the AP selector — the
/// paper's median (Fig. 6) against mean, max, and latest-sample.
pub fn ablation_selector(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ablation_selector",
        "Selection policy ablation (15 mph, 25 Mbit/s UDP)",
        &["policy", "goodput (Mbit/s)", "switches", "accuracy %"],
    );
    for (policy, name) in [
        (SelectionPolicy::Median, "median (paper)"),
        (SelectionPolicy::Mean, "mean"),
        (SelectionPolicy::Max, "max"),
        (SelectionPolicy::Latest, "latest"),
    ] {
        let cfg = WgttConfig {
            selection_policy: policy,
            ..WgttConfig::default()
        };
        let run = drive(
            SystemKind::Wgtt(cfg),
            15.0,
            FlowSpec::DownlinkUdp { rate_mbps: 25.0 },
            seed,
        );
        let r = &run.world.report;
        out.row(vec![
            name.into(),
            f(run.mean_mbps(), 2),
            r.switches.to_string(),
            f(100.0 * r.accuracy_hits / r.accuracy_total.max(1e-9), 1),
        ]);
    }
    out.note("the median resists single-reading fading spikes and CSI noise (Fig. 6)");
    out
}

/// Ablation: Block ACK forwarding on vs off (§3.2.1's contribution).
pub fn ablation_back_fwd(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ablation_back_fwd",
        "Block ACK forwarding ablation (15 mph, 25 Mbit/s UDP)",
        &["forwarding", "goodput (Mbit/s)", "BA timeouts"],
    );
    for (enabled, name) in [(true, "on (paper)"), (false, "off")] {
        let cfg = WgttConfig {
            enable_ba_forwarding: enabled,
            ..WgttConfig::default()
        };
        let run = drive(
            SystemKind::Wgtt(cfg),
            15.0,
            FlowSpec::DownlinkUdp { rate_mbps: 25.0 },
            seed,
        );
        // Sum BA timeouts across APs from the debug counters.
        let timeouts: u64 = run
            .world
            .debug_summary()
            .split("to=")
            .skip(1)
            .filter_map(|s| s.split(' ').next().and_then(|v| v.parse::<u64>().ok()))
            .sum();
        out.row(vec![
            name.into(),
            f(run.mean_mbps(), 2),
            timeouts.to_string(),
        ]);
    }
    out.note("forwarded Block ACKs cut full-window retransmissions at cell edges");
    out
}

/// Extension: stop-and-go traffic (a car halts at a light mid-array).
/// Exercises the static↔vehicular transition — selection must go quiet
/// while parked and wake up on motion.
pub fn ext_stop_and_go(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_stop_and_go",
        "Stop-and-go: 15 mph drive with an 8 s stop at x = 23 m",
        &["system", "moving Mbit/s", "parked Mbit/s", "switches"],
    );
    let speed = 15.0;
    let v = mps(speed);
    let stop_x = 23.0;
    let pause_s = 8.0;
    let plan = ClientPlan::stop_and_go(speed, stop_x, pause_s);
    let t_stop = SimTime::from_secs_f64((stop_x + 15.0) / v);
    let t_resume = t_stop + SimDuration::from_secs_f64(pause_s);
    let total =
        SimDuration::from_secs_f64((TestbedConfig::paper_array().road_len() + 45.0) / v + pause_s);
    for (sys, name) in [
        (SystemKind::Wgtt(WgttConfig::default()), "WGTT"),
        (SystemKind::Enhanced80211r, "802.11r"),
    ] {
        let cfg = TestbedConfig::paper_array().with_clients(vec![plan]);
        let mut w = World::new(
            cfg,
            sys,
            vec![FlowSpec::DownlinkUdp { rate_mbps: 25.0 }],
            seed,
        );
        w.traffic_start = SimTime::from_secs_f64(7.0 / v);
        w.run(total);
        let m = &w.report.flow_meters[&FlowId(0)];
        // "Moving" = everything outside the pause window.
        let before = m.mbps_over(w.traffic_start, t_stop);
        let after = m.mbps_over(t_resume, SimTime::ZERO + total);
        let moving = (before + after) / 2.0;
        let parked = m.mbps_over(t_stop, t_resume);
        out.row(vec![
            name.into(),
            f(moving, 2),
            f(parked, 2),
            w.report.switches.to_string(),
        ]);
    }
    out.note("parked throughput should hold steady (no flapping); motion resumes switching");
    out
}

/// Extension (paper §7): adjacent APs on alternating channels. Avoids
/// inter-cell interference but costs WGTT its uplink overhearing — the
/// client is only visible to same-channel APs, so CSI, fan-out, and
/// de-duplication diversity all halve.
pub fn ext_multichannel(seed: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ext_multichannel",
        "Single vs dual channel deployment (15 mph)",
        &[
            "deployment",
            "DL UDP Mbit/s",
            "UL UDP loss",
            "dup copies/fwd",
        ],
    );
    for (dual, name) in [(false, "single channel (paper)"), (true, "dual channel")] {
        let mk_cfg = || {
            if dual {
                TestbedConfig::paper_array_dual_channel()
            } else {
                TestbedConfig::paper_array()
            }
        };
        let v = mps(15.0);
        let start = SimTime::from_secs_f64(7.0 / v);
        let dur = SimDuration::from_secs_f64((TestbedConfig::paper_array().road_len() + 45.0) / v);
        // Downlink goodput.
        let mut w = World::new(
            mk_cfg().with_clients(vec![ClientPlan::drive_by(15.0)]),
            SystemKind::Wgtt(WgttConfig::default()),
            vec![FlowSpec::DownlinkUdp { rate_mbps: 25.0 }],
            seed,
        );
        w.traffic_start = start;
        w.run(dur);
        let dl = w.report.flow_meters[&FlowId(0)].mbps_over(start, SimTime::ZERO + dur);
        // Uplink loss + diversity.
        let mut u = World::new(
            mk_cfg().with_clients(vec![ClientPlan::drive_by(15.0)]),
            SystemKind::Wgtt(WgttConfig::default()),
            vec![FlowSpec::UplinkUdp { rate_mbps: 8.0 }],
            seed,
        );
        u.traffic_start = start;
        u.run(dur);
        let (sent, recv) = u.report.udp_counts[&FlowId(0)];
        let loss = if sent > 0 {
            1.0 - recv.min(sent) as f64 / sent as f64
        } else {
            0.0
        };
        let (fwd, dup) = u.report.uplink_dedup;
        out.row(vec![
            name.into(),
            f(dl, 2),
            f(loss, 3),
            format!("{dup}/{fwd}"),
        ]);
    }
    out.note("paper §7: different channels \"would be unable to forward overheard packets, resulting in a higher uplink packet loss rate\"");
    out
}
