//! Vendored minimal benchmark harness.
//!
//! The build environment has no route to crates.io, so this crate
//! implements the subset of the real `criterion` API this workspace's
//! benches use: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is calibrated with a single probe
//! iteration, then timed for `sample_size` samples of `iters`
//! iterations each, where `iters` targets roughly
//! [`TARGET_SAMPLE_NANOS`] of wall time per sample (so sub-microsecond
//! routines are timed over many iterations while multi-second scenario
//! benches run exactly once per sample). Reported figures are the
//! minimum / median / maximum of the per-iteration sample means, in
//! criterion's familiar `time: [lo mid hi]` shape.

use std::time::Instant;

/// Wall time each measurement sample aims to occupy, in nanoseconds.
const TARGET_SAMPLE_NANOS: u128 = 5_000_000;

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] groups setup outputs.
/// `SmallInput`/`LargeInput` prepare a batch of inputs up front and
/// bracket the whole batch with one timer read (no per-call timer
/// overhead — right for nanosecond-scale routines). `PerIteration`
/// interleaves setup with the routine and times each routine call
/// individually — right when the routine's cost depends on fresh
/// setup-side state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state: configuration plus result collection.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim sizes measurement by
    /// [`TARGET_SAMPLE_NANOS`] instead.
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up via its
    /// calibration probe instead.
    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, called back-to-back in calibrated batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration probe: one iteration, also serving as warm-up.
        let probe = Instant::now();
        black_box(routine());
        let probe_ns = probe.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NANOS / probe_ns).clamp(1, 50_000_000) as usize;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters as f64);
        }
    }

    /// Time `routine` over inputs produced by `setup`; only the routine
    /// is inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let probe = Instant::now();
        black_box(routine(input));
        let probe_ns = probe.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NANOS / probe_ns).clamp(1, 1_000_000) as usize;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let elapsed_ns = match size {
                BatchSize::PerIteration => {
                    // Setup interleaves with the routine; each routine
                    // call is timed alone (setup excluded).
                    let mut total = 0u128;
                    for _ in 0..iters {
                        let input = setup();
                        let start = Instant::now();
                        black_box(routine(input));
                        total += start.elapsed().as_nanos();
                    }
                    total
                }
                BatchSize::SmallInput | BatchSize::LargeInput => {
                    // Inputs prepared up front; one timer read brackets
                    // the whole batch, so per-call timer overhead never
                    // pollutes nanosecond-scale routines.
                    let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                    let start = Instant::now();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    start.elapsed().as_nanos()
                }
            };
            self.samples_ns.push(elapsed_ns as f64 / iters as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<52} time: [no samples]");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let lo = self.samples_ns[0];
        let mid = self.samples_ns[self.samples_ns.len() / 2];
        let hi = *self.samples_ns.last().expect("non-empty");
        println!(
            "{id:<52} time: [{} {} {}]",
            format_ns(lo),
            format_ns(mid),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group: either the simple form
/// `criterion_group!(name, target_a, target_b)` or the configured form
/// with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default().sample_size(3);
        // Only checks the plumbing end-to-end: calibration, sampling,
        // and reporting must not panic on a trivial routine.
        c.bench_function("shim/self-test", |b| b.iter(|| black_box(1u64 + 1)));
        c.bench_function("shim/self-test-batched", |b| {
            b.iter_batched(|| 21u64, |x| black_box(x * 2), BatchSize::SmallInput)
        });
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_500_000_000.0).ends_with(" s"));
    }
}
