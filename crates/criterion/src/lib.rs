//! Vendored minimal benchmark harness.
//!
//! The build environment has no route to crates.io, so this crate
//! implements the subset of the real `criterion` API this workspace's
//! benches use: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is calibrated with a single probe
//! iteration, then timed for `sample_size` samples of `iters`
//! iterations each, where `iters` targets roughly
//! [`TARGET_SAMPLE_NANOS`] of wall time per sample (so sub-microsecond
//! routines are timed over many iterations while multi-second scenario
//! benches run exactly once per sample). Reported figures are the
//! minimum / median / maximum of the per-iteration sample means, in
//! criterion's familiar `time: [lo mid hi]` shape.

/// Wall time each measurement sample aims to occupy, in nanoseconds.
const TARGET_SAMPLE_NANOS: u128 = 5_000_000;

pub use std::hint::black_box;

/// Low-overhead timestamp source for the measurement loops.
///
/// `Instant::now()` costs a vDSO call (~20–30 ns) per read — acceptable
/// around a calibrated batch, but the dominant cost when probing or
/// per-iteration-timing routines that themselves run in nanoseconds
/// (the SIMD PHY kernels this workspace benches). This module reads the
/// hardware cycle/tick counter instead — `rdtsc` on x86_64,
/// `cntvct_el0` on aarch64 — calibrated once against `Instant` so every
/// reported figure stays in nanoseconds. Architectures without a usable
/// counter (and counters that calibrate degenerately) fall back to
/// `Instant` transparently.
pub mod clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn counter() -> u64 {
        // Unserialized on purpose: measurement brackets span entire
        // batches, so fence cost would dwarf any reordering skew.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(target_arch = "aarch64")]
    #[inline(always)]
    fn counter() -> u64 {
        let v: u64;
        // The generic timer's virtual count: constant-rate, user-readable.
        unsafe {
            core::arch::asm!("mrs {v}, cntvct_el0", v = out(reg) v, options(nomem, nostack, preserves_flags));
        }
        v
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn counter() -> u64 {
        0 // never read: `ns_per_tick` is 0 and start() takes the Instant arm
    }

    /// Nanoseconds per counter tick, calibrated once against `Instant`
    /// over a ~2 ms spin. `0.0` means "counter unusable — use Instant".
    fn ns_per_tick() -> f64 {
        static NS: OnceLock<f64> = OnceLock::new();
        *NS.get_or_init(|| {
            if cfg!(not(any(target_arch = "x86_64", target_arch = "aarch64"))) {
                return 0.0;
            }
            let t0 = Instant::now();
            let c0 = counter();
            while t0.elapsed().as_micros() < 2_000 {
                std::hint::spin_loop();
            }
            let dc = counter().wrapping_sub(c0);
            let dt = t0.elapsed().as_nanos() as f64;
            if dc == 0 {
                0.0 // counter pinned or privileged-off: fall back
            } else {
                dt / dc as f64
            }
        })
    }

    /// A started timer: cycle-counter ticks when the hardware counter
    /// calibrated, wall clock otherwise.
    pub enum Stopwatch {
        Ticks(u64),
        Wall(Instant),
    }

    /// Start a timer with the cheapest usable source.
    #[inline(always)]
    pub fn start() -> Stopwatch {
        if ns_per_tick() > 0.0 {
            Stopwatch::Ticks(counter())
        } else {
            Stopwatch::Wall(Instant::now())
        }
    }

    impl Stopwatch {
        /// Elapsed nanoseconds since [`start`].
        #[inline(always)]
        pub fn elapsed_ns(&self) -> f64 {
            match self {
                Stopwatch::Ticks(c0) => counter().wrapping_sub(*c0) as f64 * ns_per_tick(),
                Stopwatch::Wall(t0) => t0.elapsed().as_nanos() as f64,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn stopwatch_is_monotone_and_tracks_wall_time() {
            let sw = start();
            let wall = Instant::now();
            std::thread::sleep(std::time::Duration::from_millis(50));
            let got = sw.elapsed_ns();
            let want = wall.elapsed().as_nanos() as f64;
            assert!(got > 0.0);
            // Same 50 ms sleep on both clocks: within 20 % of each other
            // (calibration error is well under 1 %; the slack is for CI
            // scheduling jitter between the two reads).
            assert!(
                (got - want).abs() / want < 0.20,
                "stopwatch {got} ns vs wall {want} ns"
            );
            // And strictly increasing on an immediate re-read.
            assert!(sw.elapsed_ns() >= got);
        }
    }
}

/// How [`Bencher::iter_batched`] groups setup outputs.
/// `SmallInput`/`LargeInput` prepare a batch of inputs up front and
/// bracket the whole batch with one timer read (no per-call timer
/// overhead — right for nanosecond-scale routines). `PerIteration`
/// interleaves setup with the routine and times each routine call
/// individually — right when the routine's cost depends on fresh
/// setup-side state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state: configuration plus result collection.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim sizes measurement by
    /// [`TARGET_SAMPLE_NANOS`] instead.
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up via its
    /// calibration probe instead.
    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, called back-to-back in calibrated batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration probe: one iteration, also serving as warm-up.
        let probe = clock::start();
        black_box(routine());
        let probe_ns = (probe.elapsed_ns() as u128).max(1);
        let iters = (TARGET_SAMPLE_NANOS / probe_ns).clamp(1, 50_000_000) as usize;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = clock::start();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed_ns();
            self.samples_ns.push(elapsed / iters as f64);
        }
    }

    /// Time `routine` over inputs produced by `setup`; only the routine
    /// is inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let probe = clock::start();
        black_box(routine(input));
        let probe_ns = (probe.elapsed_ns() as u128).max(1);
        let iters = (TARGET_SAMPLE_NANOS / probe_ns).clamp(1, 1_000_000) as usize;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let elapsed_ns = match size {
                BatchSize::PerIteration => {
                    // Setup interleaves with the routine; each routine
                    // call is timed alone (setup excluded) — the case
                    // where the cycle counter's low read cost matters
                    // most.
                    let mut total = 0f64;
                    for _ in 0..iters {
                        let input = setup();
                        let start = clock::start();
                        black_box(routine(input));
                        total += start.elapsed_ns();
                    }
                    total
                }
                BatchSize::SmallInput | BatchSize::LargeInput => {
                    // Inputs prepared up front; one timer read brackets
                    // the whole batch, so per-call timer overhead never
                    // pollutes nanosecond-scale routines.
                    let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                    let start = clock::start();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    start.elapsed_ns()
                }
            };
            self.samples_ns.push(elapsed_ns / iters as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<52} time: [no samples]");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let lo = self.samples_ns[0];
        let mid = self.samples_ns[self.samples_ns.len() / 2];
        let hi = *self.samples_ns.last().expect("non-empty");
        println!(
            "{id:<52} time: [{} {} {}]",
            format_ns(lo),
            format_ns(mid),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group: either the simple form
/// `criterion_group!(name, target_a, target_b)` or the configured form
/// with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default().sample_size(3);
        // Only checks the plumbing end-to-end: calibration, sampling,
        // and reporting must not panic on a trivial routine.
        c.bench_function("shim/self-test", |b| b.iter(|| black_box(1u64 + 1)));
        c.bench_function("shim/self-test-batched", |b| {
            b.iter_batched(|| 21u64, |x| black_box(x * 2), BatchSize::SmallInput)
        });
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_500_000_000.0).ends_with(" s"));
    }
}
