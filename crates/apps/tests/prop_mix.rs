//! Seed-determinism properties for the fleet traffic-mix deal.
//!
//! The fleet generator deals one [`AppKind`] per vehicle by sampling
//! [`TrafficMix`] from a per-vehicle RNG stream derived as
//! `root(seed).derive("fleet").derive_indexed("vehicle", i)`. Two
//! contracts keep fleet scenarios reproducible and shard-safe:
//!
//! * **Same seed ⇒ identical deal** — the whole fleet's assignment is a
//!   pure function of the seed.
//! * **Per-vehicle independence** — vehicle `i`'s stream is its own:
//!   drawing extra values from it (or skipping vehicles entirely, as a
//!   spatial shard does when it only instantiates its own district)
//!   never changes what any other vehicle is dealt.

use proptest::prelude::*;
use wgtt_apps::mix::{AppKind, TrafficMix};
use wgtt_sim::rng::RngStream;

fn deal(seed: u64, mix: &TrafficMix, n: usize) -> Vec<AppKind> {
    let root = RngStream::root(seed).derive("fleet");
    (0..n)
        .map(|vi| {
            let mut rng = root.derive_indexed("vehicle", vi as u64).rng();
            mix.sample(&mut rng)
        })
        .collect()
}

proptest! {
    /// The whole deal is a pure function of the seed.
    #[test]
    fn same_seed_deals_the_same_fleet(seed in any::<u64>(), n in 1usize..64) {
        let mix = TrafficMix::transit_default();
        prop_assert_eq!(deal(seed, &mix, n), deal(seed, &mix, n));
    }

    /// Burning extra draws on one vehicle's stream leaves every other
    /// vehicle's deal untouched: the per-vehicle derivation really is
    /// an independent stream, not a shared sequence with offsets.
    #[test]
    fn extra_draws_on_one_vehicle_leave_the_others_alone(
        seed in any::<u64>(),
        n in 2usize..32,
        victim_raw in any::<u64>(),
        extra in 1usize..20,
    ) {
        let mix = TrafficMix::transit_default();
        let clean = deal(seed, &mix, n);
        let victim = (victim_raw % n as u64) as usize;

        let root = RngStream::root(seed).derive("fleet");
        let mut perturbed = Vec::with_capacity(n);
        for vi in 0..n {
            let mut rng = root.derive_indexed("vehicle", vi as u64).rng();
            if vi == victim {
                for _ in 0..extra {
                    let _ = mix.sample(&mut rng); // burn draws
                }
            }
            perturbed.push(mix.sample(&mut rng));
        }
        for vi in 0..n {
            if vi != victim {
                prop_assert_eq!(clean[vi], perturbed[vi], "vehicle {} shifted", vi);
            }
        }
    }

    /// Sampling only a subset of vehicles (a shard's view of the fleet)
    /// deals them exactly what the full fleet pass deals them.
    #[test]
    fn a_shards_subset_view_matches_the_full_deal(
        seed in any::<u64>(),
        n in 2usize..48,
        lo_raw in any::<u64>(),
    ) {
        let mix = TrafficMix::transit_default();
        let full = deal(seed, &mix, n);
        let lo = (lo_raw % n as u64) as usize;
        let root = RngStream::root(seed).derive("fleet");
        for (vi, &dealt) in full.iter().enumerate().skip(lo) {
            let mut rng = root.derive_indexed("vehicle", vi as u64).rng();
            prop_assert_eq!(dealt, mix.sample(&mut rng), "vehicle {}", vi);
        }
    }

    /// A degenerate single-app mix deals that app regardless of stream.
    #[test]
    fn degenerate_mix_is_constant(seed in any::<u64>(), n in 1usize..32) {
        for kind in [AppKind::Video, AppKind::Web, AppKind::Conference, AppKind::Telemetry] {
            let mix = TrafficMix::all(kind);
            prop_assert!(deal(seed, &mix, n).iter().all(|&k| k == kind));
        }
    }
}
