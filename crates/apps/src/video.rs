//! Buffered video playback (paper §5.4, "Online video").
//!
//! The client streams a 720p video (the paper caches it on a local
//! server, so the bottleneck is the wireless path), pre-buffers 1,500 ms,
//! and plays at the media bitrate. Whenever the playout buffer empties,
//! playback stalls — a *rebuffer event* — until the pre-buffer refills.
//! The reported metric is the rebuffer ratio: stalled time divided by
//! the time the client spends transiting the AP array.

use wgtt_sim::time::{SimDuration, SimTime};

/// Playback state of the player.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaybackState {
    /// Filling the initial pre-buffer; playback has not started.
    Prebuffering,
    /// Playing smoothly.
    Playing,
    /// Stalled mid-stream, refilling the pre-buffer.
    Rebuffering,
}

/// Client-side player fed by delivered TCP bytes.
#[derive(Debug)]
pub struct VideoPlayer {
    /// Media bitrate, bits/second (720p ≈ 2.5 Mbit/s).
    bitrate_bps: f64,
    /// Pre-buffer playout depth required to (re)start playback.
    prebuffer: SimDuration,
    /// Media seconds currently buffered ahead of the playhead.
    buffered_s: f64,
    state: PlaybackState,
    last_advance: SimTime,
    /// Number of mid-stream stalls.
    pub rebuffer_events: u64,
    /// Total stalled (rebuffering) time, excluding the initial prebuffer.
    pub rebuffer_time: SimDuration,
    /// Total time played.
    pub played_time: SimDuration,
}

impl VideoPlayer {
    /// A player for a stream of `bitrate_bps` with the given pre-buffer
    /// depth, created at `now`.
    pub fn new(bitrate_bps: f64, prebuffer: SimDuration, now: SimTime) -> Self {
        assert!(bitrate_bps > 0.0);
        VideoPlayer {
            bitrate_bps,
            prebuffer,
            buffered_s: 0.0,
            state: PlaybackState::Prebuffering,
            last_advance: now,
            rebuffer_events: 0,
            rebuffer_time: SimDuration::ZERO,
            played_time: SimDuration::ZERO,
        }
    }

    /// The paper's configuration: 2.5 Mbit/s 720p with a 1,500 ms
    /// pre-buffer.
    pub fn hd_default(now: SimTime) -> Self {
        VideoPlayer::new(2.5e6, SimDuration::from_millis(1500), now)
    }

    /// Current state.
    pub fn state(&self) -> PlaybackState {
        self.state
    }

    /// Media seconds buffered ahead of the playhead.
    pub fn buffered_seconds(&self) -> f64 {
        self.buffered_s
    }

    /// Advance the playback clock to `now`, consuming buffer while
    /// playing and accumulating stall time while not.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_advance).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        self.last_advance = now;
        match self.state {
            PlaybackState::Playing => {
                if self.buffered_s >= dt {
                    self.buffered_s -= dt;
                    self.played_time += SimDuration::from_secs_f64(dt);
                } else {
                    // Played what was left, then stalled.
                    let played = self.buffered_s;
                    self.buffered_s = 0.0;
                    self.played_time += SimDuration::from_secs_f64(played);
                    self.rebuffer_time += SimDuration::from_secs_f64(dt - played);
                    self.rebuffer_events += 1;
                    self.state = PlaybackState::Rebuffering;
                }
            }
            PlaybackState::Rebuffering => {
                self.rebuffer_time += SimDuration::from_secs_f64(dt);
            }
            PlaybackState::Prebuffering => {}
        }
    }

    /// Feed `bytes` of delivered media at `now`.
    pub fn on_bytes(&mut self, now: SimTime, bytes: u64) {
        self.advance(now);
        self.buffered_s += bytes as f64 * 8.0 / self.bitrate_bps;
        let threshold = self.prebuffer.as_secs_f64();
        match self.state {
            PlaybackState::Prebuffering | PlaybackState::Rebuffering
                if self.buffered_s >= threshold =>
            {
                self.state = PlaybackState::Playing;
            }
            _ => {}
        }
    }

    /// Rebuffer ratio over an observation span (the client's transit
    /// time): stalled time / span.
    pub fn rebuffer_ratio(&self, span: SimDuration) -> f64 {
        if span == SimDuration::ZERO {
            return 0.0;
        }
        self.rebuffer_time.as_secs_f64() / span.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// Bytes equal to `s` seconds of media at 2.5 Mbit/s.
    fn media(s: f64) -> u64 {
        (s * 2.5e6 / 8.0) as u64
    }

    #[test]
    fn prebuffer_gates_start() {
        let mut p = VideoPlayer::hd_default(ms(0));
        p.on_bytes(ms(100), media(1.0));
        assert_eq!(p.state(), PlaybackState::Prebuffering);
        p.on_bytes(ms(200), media(0.6));
        assert_eq!(p.state(), PlaybackState::Playing);
    }

    #[test]
    fn smooth_delivery_never_rebuffers() {
        let mut p = VideoPlayer::hd_default(ms(0));
        // Deliver 200 ms of media every 100 ms: buffer only grows.
        for i in 1..100u64 {
            p.on_bytes(ms(i * 100), media(0.2));
        }
        p.advance(ms(10_000));
        assert_eq!(p.rebuffer_events, 0);
        assert_eq!(p.rebuffer_time, SimDuration::ZERO);
        assert_eq!(p.state(), PlaybackState::Playing);
    }

    #[test]
    fn starvation_stalls_and_counts() {
        let mut p = VideoPlayer::hd_default(ms(0));
        p.on_bytes(ms(0), media(2.0)); // starts playing with 2 s
                                       // Nothing arrives for 5 s: stalls after 2 s, rebuffers 3 s.
        p.advance(ms(5_000));
        assert_eq!(p.state(), PlaybackState::Rebuffering);
        assert_eq!(p.rebuffer_events, 1);
        assert!((p.rebuffer_time.as_secs_f64() - 3.0).abs() < 1e-9);
        assert!((p.played_time.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rebuffer_requires_full_prebuffer_to_resume() {
        let mut p = VideoPlayer::hd_default(ms(0));
        p.on_bytes(ms(0), media(2.0));
        p.advance(ms(3_000)); // stalled at 2 s
        p.on_bytes(ms(3_100), media(1.0)); // 1 s < 1.5 s prebuffer
        assert_eq!(p.state(), PlaybackState::Rebuffering);
        p.on_bytes(ms(3_200), media(0.6));
        assert_eq!(p.state(), PlaybackState::Playing);
    }

    #[test]
    fn rebuffer_ratio_is_fractional_stall() {
        let mut p = VideoPlayer::hd_default(ms(0));
        p.on_bytes(ms(0), media(2.0));
        p.advance(ms(4_000)); // 2 s played, 2 s stalled
        let ratio = p.rebuffer_ratio(SimDuration::from_secs(4));
        assert!((ratio - 0.5).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn zero_span_ratio_is_zero() {
        let p = VideoPlayer::hd_default(ms(0));
        assert_eq!(p.rebuffer_ratio(SimDuration::ZERO), 0.0);
    }
}
