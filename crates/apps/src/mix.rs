//! Per-vehicle traffic-mix sampling for fleet scenarios.
//!
//! A fleet run gives every vehicle a workload drawn from a weighted mix
//! of the crate's application models (§5.4): streaming video, a web
//! page fetch, a bidirectional conference call, or background telemetry
//! only. The draw is a plain weighted categorical over a seeded
//! [`Xoshiro256`], so the same seed always deals the same apps to the
//! same vehicles regardless of what the rest of the world does with its
//! own RNG streams.

use wgtt_sim::rng::Xoshiro256;

/// One application category a vehicle can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// HD streaming video: a constant-rate downlink matching the
    /// [`crate::video::VideoPlayer`] 720p consumption rate.
    Video,
    /// A finite web page fetch ([`crate::web::PageLoad`]-sized TCP
    /// transfer).
    Web,
    /// Bidirectional adaptive video conference.
    Conference,
    /// Uplink telemetry only (position beacons, fare payments) — no
    /// user-facing downlink beyond the control plane.
    Telemetry,
}

/// Weighted mix of application categories across a fleet.
///
/// Weights are relative, not probabilities: they are normalised at
/// sampling time, so `{3, 1, 1, 1}` means video is three times as
/// likely as each of the others.
#[derive(Debug, Clone, Copy)]
pub struct TrafficMix {
    pub video: f64,
    pub web: f64,
    pub conference: f64,
    pub telemetry: f64,
}

impl TrafficMix {
    /// The default transit-bus mix: video-heavy (half the riders
    /// streaming), with web browsing, a few calls, and a telemetry-only
    /// remainder.
    pub fn transit_default() -> Self {
        TrafficMix {
            video: 0.50,
            web: 0.25,
            conference: 0.10,
            telemetry: 0.15,
        }
    }

    /// A mix where every vehicle runs the same app (degenerate but
    /// useful for focused experiments).
    pub fn all(kind: AppKind) -> Self {
        let mut m = TrafficMix {
            video: 0.0,
            web: 0.0,
            conference: 0.0,
            telemetry: 0.0,
        };
        match kind {
            AppKind::Video => m.video = 1.0,
            AppKind::Web => m.web = 1.0,
            AppKind::Conference => m.conference = 1.0,
            AppKind::Telemetry => m.telemetry = 1.0,
        }
        m
    }

    fn total(&self) -> f64 {
        self.video + self.web + self.conference + self.telemetry
    }

    /// Draw one application category.
    ///
    /// Panics if every weight is zero or any weight is negative — a
    /// configuration error, not a runtime condition.
    pub fn sample(&self, rng: &mut Xoshiro256) -> AppKind {
        assert!(
            self.video >= 0.0 && self.web >= 0.0 && self.conference >= 0.0 && self.telemetry >= 0.0,
            "traffic-mix weights must be non-negative: {self:?}"
        );
        let total = self.total();
        assert!(total > 0.0, "traffic mix has no positive weight: {self:?}");
        let mut x = rng.uniform() * total;
        for (w, kind) in [
            (self.video, AppKind::Video),
            (self.web, AppKind::Web),
            (self.conference, AppKind::Conference),
            (self.telemetry, AppKind::Telemetry),
        ] {
            if x < w {
                return kind;
            }
            x -= w;
        }
        // Floating-point edge: `uniform()` can land exactly on the
        // cumulative total; the last positive-weight category wins.
        if self.telemetry > 0.0 {
            AppKind::Telemetry
        } else if self.conference > 0.0 {
            AppKind::Conference
        } else if self.web > 0.0 {
            AppKind::Web
        } else {
            AppKind::Video
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_mix_always_returns_its_kind() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for kind in [
            AppKind::Video,
            AppKind::Web,
            AppKind::Conference,
            AppKind::Telemetry,
        ] {
            let mix = TrafficMix::all(kind);
            for _ in 0..64 {
                assert_eq!(mix.sample(&mut rng), kind);
            }
        }
    }

    #[test]
    fn sample_tracks_weights() {
        let mix = TrafficMix::transit_default();
        let mut rng = Xoshiro256::seed_from_u64(42);
        let mut counts = [0u32; 4];
        let n = 20_000;
        for _ in 0..n {
            match mix.sample(&mut rng) {
                AppKind::Video => counts[0] += 1,
                AppKind::Web => counts[1] += 1,
                AppKind::Conference => counts[2] += 1,
                AppKind::Telemetry => counts[3] += 1,
            }
        }
        let frac = |c: u32| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.50).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[1]) - 0.25).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[2]) - 0.10).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[3]) - 0.15).abs() < 0.02, "{counts:?}");
    }

    #[test]
    fn same_seed_same_deal() {
        let mix = TrafficMix::transit_default();
        let deal = |seed: u64| -> Vec<AppKind> {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            (0..500).map(|_| mix.sample(&mut rng)).collect()
        };
        assert_eq!(deal(123), deal(123));
        assert_ne!(deal(123), deal(124));
    }

    #[test]
    #[should_panic(expected = "no positive weight")]
    fn zero_mix_panics() {
        let mix = TrafficMix {
            video: 0.0,
            web: 0.0,
            conference: 0.0,
            telemetry: 0.0,
        };
        let mut rng = Xoshiro256::seed_from_u64(1);
        mix.sample(&mut rng);
    }
}
