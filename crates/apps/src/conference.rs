//! Real-time video conferencing (paper §5.4, "Remote video conferencing").
//!
//! Two parties exchange video frames at a nominal 30 fps over UDP. A
//! frame counts as rendered in the second it fully arrives; the paper
//! reports the CDF of per-second fps over the drive. Two application
//! behaviours are modelled:
//!
//! * **Fixed** (Skype-like): constant frame size — loss directly costs
//!   frames;
//! * **Adaptive** (Hangouts-like): the sender shrinks frame size when it
//!   observes loss, so more (smaller) frames survive — the paper sees
//!   Hangouts reach 56 fps percentiles where Skype sits at 20.

use wgtt_sim::time::{SimDuration, SimTime};

/// Sender-side frame generator.
#[derive(Debug)]
pub struct ConferenceSource {
    /// Nominal frame rate.
    fps: f64,
    /// Current frame payload size, bytes.
    frame_bytes: u32,
    /// Bounds for the adaptive mode.
    min_frame_bytes: u32,
    max_frame_bytes: u32,
    /// Whether the source adapts frame size to observed loss.
    adaptive: bool,
    next_frame: u64,
    next_due: SimTime,
}

/// A frame to be chunked into UDP packets by the flow glue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoFrame {
    /// Monotone frame number.
    pub id: u64,
    /// Payload size, bytes.
    pub bytes: u32,
    /// Generation instant.
    pub at: SimTime,
}

impl ConferenceSource {
    /// Skype-like: fixed 30 fps × 10 kB frames (≈2.4 Mbit/s).
    pub fn fixed(start: SimTime) -> Self {
        ConferenceSource {
            fps: 30.0,
            frame_bytes: 10_000,
            min_frame_bytes: 10_000,
            max_frame_bytes: 10_000,
            adaptive: false,
            next_frame: 0,
            next_due: start,
        }
    }

    /// Hangouts-like: 30 fps with frame size adapting in [1.5 kB, 10 kB]
    /// (resolution reduction under loss).
    pub fn adaptive(start: SimTime) -> Self {
        ConferenceSource {
            fps: 30.0,
            frame_bytes: 10_000,
            min_frame_bytes: 1_500,
            max_frame_bytes: 10_000,
            adaptive: true,
            next_frame: 0,
            next_due: start,
        }
    }

    /// Current frame size, bytes.
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }

    /// Defer the first frame to `t` (no back-fill burst).
    pub fn defer_start(&mut self, t: SimTime) {
        if t > self.next_due {
            self.next_due = t;
        }
    }

    /// Emit every frame due at or before `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<VideoFrame> {
        let interval = SimDuration::from_secs_f64(1.0 / self.fps);
        let mut out = Vec::new();
        while self.next_due <= now {
            out.push(VideoFrame {
                id: self.next_frame,
                bytes: self.frame_bytes,
                at: self.next_due,
            });
            self.next_frame += 1;
            self.next_due += interval;
        }
        out
    }

    /// Feed back the observed frame loss fraction over the last feedback
    /// period. The adaptive source halves frame size above 10 % loss and
    /// creeps back up (+10 %) when clean.
    pub fn on_loss_feedback(&mut self, loss: f64) {
        if !self.adaptive {
            return;
        }
        if loss > 0.10 {
            self.frame_bytes = (self.frame_bytes / 2).max(self.min_frame_bytes);
        } else if loss < 0.02 {
            self.frame_bytes = ((self.frame_bytes as f64 * 1.1) as u32).min(self.max_frame_bytes);
        }
    }
}

/// Receiver-side fps accounting.
#[derive(Debug, Default)]
pub struct ConferenceSink {
    /// Completed-frame timestamps.
    completions: Vec<SimTime>,
}

impl ConferenceSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A frame fully arrived at `now`.
    pub fn on_frame_complete(&mut self, now: SimTime) {
        if let Some(&last) = self.completions.last() {
            debug_assert!(now >= last, "completions must be time-ordered");
        }
        self.completions.push(now);
    }

    /// Frames completed.
    pub fn frames(&self) -> usize {
        self.completions.len()
    }

    /// Per-second fps samples over `[start, start + seconds)` — exactly
    /// what the paper's screen-recorder (`scrot` each 1 s) captured.
    pub fn fps_per_second(&self, start: SimTime, seconds: usize) -> Vec<f64> {
        let mut bins = vec![0.0f64; seconds];
        for &t in &self.completions {
            if t < start {
                continue;
            }
            let idx = (t.saturating_since(start).as_secs_f64()) as usize;
            if idx < seconds {
                bins[idx] += 1.0;
            }
        }
        bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn emits_30_frames_per_second() {
        let mut s = ConferenceSource::fixed(SimTime::ZERO);
        let frames = s.poll(SimTime::from_secs(1));
        assert!((30..=31).contains(&frames.len()), "{}", frames.len());
        // Contiguous ids.
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.id as usize, i);
        }
    }

    #[test]
    fn fixed_source_ignores_feedback() {
        let mut s = ConferenceSource::fixed(SimTime::ZERO);
        s.on_loss_feedback(0.5);
        assert_eq!(s.frame_bytes(), 10_000);
    }

    #[test]
    fn adaptive_source_shrinks_under_loss_and_recovers() {
        let mut s = ConferenceSource::adaptive(SimTime::ZERO);
        s.on_loss_feedback(0.3);
        assert_eq!(s.frame_bytes(), 5_000);
        s.on_loss_feedback(0.3);
        assert_eq!(s.frame_bytes(), 2_500);
        for _ in 0..4 {
            s.on_loss_feedback(0.3);
        }
        assert_eq!(s.frame_bytes(), 1_500, "floor respected");
        for _ in 0..60 {
            s.on_loss_feedback(0.0);
        }
        assert_eq!(s.frame_bytes(), 10_000, "ceiling restored");
    }

    #[test]
    fn sink_bins_fps_per_second() {
        let mut sink = ConferenceSink::new();
        // 30 frames in second 0, 10 in second 1, none in second 2.
        for i in 0..30u64 {
            sink.on_frame_complete(ms(i * 33));
        }
        for i in 0..10u64 {
            sink.on_frame_complete(ms(1000 + i * 90));
        }
        let fps = sink.fps_per_second(SimTime::ZERO, 3);
        assert_eq!(fps, vec![30.0, 10.0, 0.0]);
        assert_eq!(sink.frames(), 40);
    }

    #[test]
    fn sink_ignores_frames_before_window() {
        let mut sink = ConferenceSink::new();
        sink.on_frame_complete(ms(100));
        sink.on_frame_complete(ms(1_600));
        let fps = sink.fps_per_second(SimTime::from_secs(1), 1);
        assert_eq!(fps, vec![1.0]);
    }
}
