//! # wgtt-apps — application workload models
//!
//! The paper's three case studies (§5.4), as byte-level application
//! state machines the scenario wires over simulated TCP/UDP flows:
//!
//! * [`video`] — HD video streaming over TCP with a 1,500 ms pre-buffer;
//!   the QoE metric is the *rebuffer ratio* (Table 4);
//! * [`conference`] — bidirectional real-time video (Skype-like fixed
//!   frame size, Hangouts-like adaptive resolution); the metric is the
//!   per-second frames-per-second CDF (Fig. 24);
//! * [`web`] — a 2.1 MB page (the paper's eBay homepage) fetched over
//!   parallel connections; the metric is the full load time (Table 5).

pub mod conference;
pub mod mix;
pub mod video;
pub mod web;

pub use conference::{ConferenceSink, ConferenceSource};
pub use mix::{AppKind, TrafficMix};
pub use video::{PlaybackState, VideoPlayer};
pub use web::PageLoad;
