//! Web page loading (paper §5.4, "Web browsing").
//!
//! The paper's volunteer loads the 2.1 MB eBay homepage, cached on a
//! local server to exclude Internet latency; the metric is the time from
//! navigation to the last byte. We model the page as an HTML document
//! plus a set of sub-resources fetched over up to six parallel
//! connections (browser-typical), with the sub-resources discoverable
//! only after the HTML finishes — the classic two-wave load.

use wgtt_sim::time::{SimDuration, SimTime};

/// Status of one resource on the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceState {
    /// Not yet requestable (HTML not parsed).
    Blocked,
    /// Ready to fetch but no connection available.
    Queued,
    /// Currently downloading.
    InFlight,
    /// Fully received at the recorded instant.
    Done(SimTime),
}

/// The page-load model: object sizes, dependency wave, and parallel
/// connection bookkeeping. The scenario owns the actual TCP transfers
/// and calls [`PageLoad::next_fetches`]/[`PageLoad::on_object_done`].
#[derive(Debug)]
pub struct PageLoad {
    sizes: Vec<u64>,
    states: Vec<ResourceState>,
    max_parallel: usize,
    started: SimTime,
}

impl PageLoad {
    /// The paper's 2.1 MB page: a 100 kB HTML document plus 40 objects
    /// of 50 kB each.
    pub fn ebay_homepage(now: SimTime) -> Self {
        let mut sizes = vec![100_000u64];
        sizes.extend(std::iter::repeat_n(50_000, 40));
        Self::new(sizes, 6, now)
    }

    /// A custom page: `sizes[0]` is the HTML; the rest unblock when it
    /// completes. `max_parallel` caps concurrent fetches.
    pub fn new(sizes: Vec<u64>, max_parallel: usize, now: SimTime) -> Self {
        assert!(!sizes.is_empty(), "a page needs at least the HTML");
        assert!(max_parallel >= 1);
        let mut states = vec![ResourceState::Blocked; sizes.len()];
        states[0] = ResourceState::Queued;
        PageLoad {
            sizes,
            states,
            max_parallel,
            started: now,
        }
    }

    /// Total page weight, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Size of object `i`.
    pub fn size_of(&self, i: usize) -> u64 {
        self.sizes[i]
    }

    /// Objects to start fetching now (marks them in flight). Respects the
    /// parallel-connection cap and the HTML-first dependency.
    pub fn next_fetches(&mut self) -> Vec<usize> {
        let in_flight = self
            .states
            .iter()
            .filter(|s| matches!(s, ResourceState::InFlight))
            .count();
        let slots = self.max_parallel.saturating_sub(in_flight);
        let mut out = Vec::new();
        for (i, st) in self.states.iter_mut().enumerate() {
            if out.len() >= slots {
                break;
            }
            if *st == ResourceState::Queued {
                *st = ResourceState::InFlight;
                out.push(i);
            }
        }
        out
    }

    /// Object `i` finished at `now`. Completing the HTML unblocks the
    /// sub-resources.
    pub fn on_object_done(&mut self, i: usize, now: SimTime) {
        debug_assert!(matches!(self.states[i], ResourceState::InFlight));
        self.states[i] = ResourceState::Done(now);
        if i == 0 {
            for st in self.states.iter_mut().skip(1) {
                if *st == ResourceState::Blocked {
                    *st = ResourceState::Queued;
                }
            }
        }
    }

    /// Whether every resource is done.
    pub fn is_complete(&self) -> bool {
        self.states
            .iter()
            .all(|s| matches!(s, ResourceState::Done(_)))
    }

    /// Navigation-to-last-byte load time, once complete.
    pub fn load_time(&self) -> Option<SimDuration> {
        let mut last = self.started;
        for s in &self.states {
            match s {
                ResourceState::Done(t) => last = last.max(*t),
                _ => return None,
            }
        }
        Some(last.saturating_since(self.started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn page_weight_matches_paper() {
        let p = PageLoad::ebay_homepage(SimTime::ZERO);
        assert_eq!(p.total_bytes(), 2_100_000);
    }

    #[test]
    fn html_fetches_first_alone() {
        let mut p = PageLoad::ebay_homepage(SimTime::ZERO);
        assert_eq!(p.next_fetches(), vec![0]);
        // Nothing else until the HTML finishes.
        assert!(p.next_fetches().is_empty());
    }

    #[test]
    fn html_completion_unblocks_six_parallel() {
        let mut p = PageLoad::ebay_homepage(SimTime::ZERO);
        p.next_fetches();
        p.on_object_done(0, ms(300));
        let wave = p.next_fetches();
        assert_eq!(wave.len(), 6);
        assert_eq!(wave, vec![1, 2, 3, 4, 5, 6]);
        // Finishing one admits exactly one more.
        p.on_object_done(1, ms(500));
        assert_eq!(p.next_fetches(), vec![7]);
    }

    #[test]
    fn load_time_is_last_byte() {
        let mut p = PageLoad::new(vec![1000, 2000, 3000], 2, ms(100));
        p.next_fetches();
        p.on_object_done(0, ms(200));
        p.next_fetches();
        p.on_object_done(2, ms(900));
        assert!(p.load_time().is_none(), "object 1 outstanding");
        p.on_object_done(1, ms(700));
        assert!(p.is_complete());
        assert_eq!(p.load_time(), Some(SimDuration::from_millis(800)));
    }

    #[test]
    fn all_objects_eventually_fetched() {
        let mut p = PageLoad::ebay_homepage(SimTime::ZERO);
        let mut done = 0;
        let mut t = 0u64;
        loop {
            let wave = p.next_fetches();
            if wave.is_empty() && p.is_complete() {
                break;
            }
            for i in wave {
                t += 10;
                p.on_object_done(i, ms(t));
                done += 1;
            }
        }
        assert_eq!(done, 41);
    }
}
